#include "ra/relation.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <utility>

namespace datalog {

uint64_t Relation::NextEpoch() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Relation::Relation(const Relation& other)
    : arity_(other.arity_),
      epoch_(NextEpoch()),
      generation_(other.generation_),
      journal_complete_(false) {
  other.MaterializeStaged();
  tuples_ = other.tuples_;
  journal_complete_ = tuples_.empty();
}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  other.MaterializeStaged();
  arity_ = other.arity_;
  tuples_ = other.tuples_;
  journal_.clear();
  erase_journal_.clear();
  graveyard_.clear();
  staged_.clear();
  epoch_ = NextEpoch();
  ++generation_;
  journal_complete_ = tuples_.empty();
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_),
      tuples_(std::move(other.tuples_)),
      journal_(std::move(other.journal_)),
      erase_journal_(std::move(other.erase_journal_)),
      graveyard_(std::move(other.graveyard_)),
      staged_(std::move(other.staged_)),
      epoch_(other.epoch_),
      generation_(other.generation_),
      journal_complete_(other.journal_complete_) {
  // Leave the source empty with a fresh monotone phase of its own, so any
  // cache still keyed on it rebuilds rather than reading stolen nodes.
  other.tuples_.clear();
  other.journal_.clear();
  other.erase_journal_.clear();
  other.graveyard_.clear();
  other.staged_.clear();
  other.epoch_ = NextEpoch();
  other.journal_complete_ = true;
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  arity_ = other.arity_;
  tuples_ = std::move(other.tuples_);
  journal_ = std::move(other.journal_);
  erase_journal_ = std::move(other.erase_journal_);
  graveyard_ = std::move(other.graveyard_);
  staged_ = std::move(other.staged_);
  epoch_ = other.epoch_;
  generation_ = other.generation_ + 1;
  journal_complete_ = other.journal_complete_;
  other.tuples_.clear();
  other.journal_.clear();
  other.erase_journal_.clear();
  other.graveyard_.clear();
  other.staged_.clear();
  other.epoch_ = NextEpoch();
  other.journal_complete_ = true;
  return *this;
}

bool Relation::Insert(const Tuple& t) {
  assert(static_cast<int>(t.size()) == arity_);
  MaterializeStaged();
  auto [it, inserted] = tuples_.insert(t);
  if (inserted) {
    ++generation_;
    journal_.push_back(&*it);
  }
  return inserted;
}

bool Relation::Insert(Tuple&& t) {
  assert(static_cast<int>(t.size()) == arity_);
  MaterializeStaged();
  auto [it, inserted] = tuples_.insert(std::move(t));
  if (inserted) {
    ++generation_;
    journal_.push_back(&*it);
  }
  return inserted;
}

void Relation::AppendStagedRows(const Value* data, size_t rows) {
  assert(arity_ >= 1);
  if (rows == 0) return;
  staged_.insert(staged_.end(), data,
                 data + rows * static_cast<size_t>(arity_));
  generation_ += rows;
}

void Relation::MaterializeStaged() const {
  if (staged_.empty()) return;
  const size_t stride = static_cast<size_t>(arity_);
  const size_t rows = staged_.size() / stride;
  tuples_.reserve(tuples_.size() + rows);
  journal_.reserve(journal_.size() + rows);
  const Value* row = staged_.data();
  for (size_t r = 0; r < rows; ++r, row += stride) {
    auto [it, inserted] = tuples_.insert(Tuple(row, row + stride));
    if (inserted) journal_.push_back(&*it);
  }
  staged_.clear();
  staged_.shrink_to_fit();
}

bool Relation::Erase(const Tuple& t) {
  MaterializeStaged();
  auto it = tuples_.find(t);
  if (it == tuples_.end()) return false;
  ++generation_;
  // Extract the node rather than erasing it: the tuple's address must
  // stay valid for every pointer already handed out through journal() —
  // and for the erase event itself — until the next epoch change.
  graveyard_.push_back(tuples_.extract(it));
  erase_journal_.push_back(
      EraseEvent{&graveyard_.back().value(), journal_.size()});
  MaybeCompact();
  return true;
}

void Relation::MaybeCompact() {
  // Churn bound: once the replay log outweighs the live contents 4:1
  // (plus slack so small relations never compact), start a fresh epoch.
  // Consumers see the epoch change and rebuild from the set.
  if (journal_.size() + erase_journal_.size() <= 4 * tuples_.size() + 64) {
    return;
  }
  journal_.clear();
  erase_journal_.clear();
  graveyard_.clear();
  epoch_ = NextEpoch();
  journal_complete_ = tuples_.empty();
}

void Relation::Clear() {
  if (tuples_.empty() && staged_.empty()) return;
  tuples_.clear();
  journal_.clear();
  erase_journal_.clear();
  graveyard_.clear();
  staged_.clear();
  ++generation_;
  epoch_ = NextEpoch();
  journal_complete_ = true;  // empty contents, empty journal: consistent
}

size_t Relation::UnionWith(const Relation& other) {
  assert(arity_ == other.arity_);
  MaterializeStaged();
  other.MaterializeStaged();
  size_t added = 0;
  for (const Tuple& t : other.tuples_) {
    auto [it, inserted] = tuples_.insert(t);
    if (inserted) {
      ++generation_;
      journal_.push_back(&*it);
      ++added;
    }
  }
  return added;
}

std::vector<Tuple> Relation::Sorted() const {
  MaterializeStaged();
  std::vector<Tuple> out(tuples_.begin(), tuples_.end());
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t Relation::ContentHash() const {
  MaterializeStaged();
  // Summing (mod 2^64) keeps the fingerprint order-independent over the
  // unordered set without XOR's cancellation: under XOR, any multiset in
  // which every tuple hash appears an even number of times — e.g. two
  // colliding pairs split across different relations — fingerprints to
  // the seed. Sums only collide when the hash totals coincide.
  uint64_t h =
      uint64_t{0x9e3779b97f4a7c15} * static_cast<uint64_t>(arity_ + 1);
  TupleHash th;
  for (const Tuple& t : tuples_) {
    // Mix each tuple hash before adding to spread single-bit differences.
    uint64_t x = th(t);
    x ^= x >> 33;
    x *= uint64_t{0xff51afd7ed558ccd};
    x ^= x >> 33;
    h += x;
  }
  return h;
}

}  // namespace datalog
