#ifndef UNCHAINED_RA_RELATION_H_
#define UNCHAINED_RA_RELATION_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "ra/tuple.h"

namespace datalog {

/// A relation instance: a finite set of constant tuples of a fixed arity
/// (Section 2). Insertion is idempotent; iteration order is unspecified —
/// use `Sorted()` when a canonical order is needed.
class Relation {
 public:
  using TupleSet = std::unordered_set<Tuple, TupleHash>;
  using const_iterator = TupleSet::const_iterator;

  /// Creates an empty relation of the given arity (>= 0; arity 0 models
  /// propositional predicates such as `delay` in Example 4.4).
  explicit Relation(int arity = 0) : arity_(arity) {}

  int arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts `t` (whose size must equal `arity()`); returns true if the
  /// tuple was not already present.
  bool Insert(const Tuple& t);
  bool Insert(Tuple&& t);

  /// Removes `t`; returns true if it was present.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }

  /// Inserts every tuple of `other` (same arity); returns the number of
  /// tuples that were new.
  size_t UnionWith(const Relation& other);

  void Clear() { tuples_.clear(); }

  const_iterator begin() const { return tuples_.begin(); }
  const_iterator end() const { return tuples_.end(); }

  /// Tuples in lexicographic order — canonical form for printing, hashing
  /// and equality-sensitive tests.
  std::vector<Tuple> Sorted() const;

  /// Set equality (arity and contents).
  bool operator==(const Relation& other) const {
    return arity_ == other.arity_ && tuples_ == other.tuples_;
  }
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// Order-independent hash of the contents (XOR of per-tuple hashes), used
  /// for instance-state fingerprinting in cycle detection.
  uint64_t ContentHash() const;

 private:
  int arity_;
  TupleSet tuples_;
};

}  // namespace datalog

#endif  // UNCHAINED_RA_RELATION_H_
