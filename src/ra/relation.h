#ifndef UNCHAINED_RA_RELATION_H_
#define UNCHAINED_RA_RELATION_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "ra/tuple.h"

namespace datalog {

/// A relation instance: a finite set of constant tuples of a fixed arity
/// (Section 2). Insertion is idempotent; iteration order is unspecified —
/// use `Sorted()` when a canonical order is needed.
///
/// Incremental-maintenance support: every relation carries
///  * a `generation()` counter, bumped on every successful mutation, so
///    caches can cheaply detect "nothing changed";
///  * an insertion *journal* — stable pointers to every tuple inserted
///    since the last non-monotone event — so index and active-domain
///    caches can append just the new tuples instead of rebuilding;
///  * an erase *journal* — one `EraseEvent` per successful `Erase`, each
///    remembering the insert-journal length at erase time (`ins_pos`), so
///    a cache can replay inserts and erases in their true interleaved
///    order. Erased nodes are parked in a graveyard until the next epoch
///    change, which keeps every pointer in either journal dereferenceable
///    for as long as the epoch is stable;
///  * a globally unique `epoch()`, refreshed on every history-losing event
///    (clear, copy, journal compaction), so a cache holding
///    (epoch, insert position, erase position) can prove its incremental
///    view is still valid. Epochs are drawn from a process-wide counter:
///    two distinct relation states never share an epoch by accident, which
///    makes the check sound even when engines swap whole instances in and
///    out (the caches then fall back to a full rebuild). `Erase` keeps the
///    epoch: deletion is an incremental event now, not a history reset.
///
/// When the two journals grow past a fixed multiple of the live contents
/// (sustained churn), the relation compacts deterministically: fresh
/// epoch, both journals and the graveyard dropped, consumers rebuild.
///
/// Columnar staging (docs/storage.md): the columnar delta engine appends
/// batches of known-new rows as flat values (`AppendStagedRows`) without
/// touching the tuple set. Staged rows count toward `size()` immediately
/// but are folded into the set — and journaled, preserving the contract
/// above — only when some consumer actually needs tuple-level access
/// (`Contains`, iteration, `journal()`, equality, ...). Staging is a
/// monotone event: the epoch is unchanged and materialization appends to
/// the journal in staging order. Materialization is not thread-safe
/// against concurrent reads; call `MaterializeStaged()` from a single
/// thread before sharing a possibly-staged relation across workers.
class Relation {
 public:
  using TupleSet = std::unordered_set<Tuple, TupleHash>;
  using const_iterator = TupleSet::const_iterator;

  /// One successful `Erase`, in erase order. `ins_pos` is the length of
  /// the insert journal at the moment of the erase: a consumer replaying
  /// both journals merges them by processing every insert with index
  /// < `ins_pos` before this erase. `tuple` stays dereferenceable (the
  /// node lives in the graveyard) until the epoch changes.
  struct EraseEvent {
    const Tuple* tuple;
    size_t ins_pos;
  };

  /// Creates an empty relation of the given arity (>= 0; arity 0 models
  /// propositional predicates such as `delay` in Example 4.4).
  explicit Relation(int arity = 0) : arity_(arity), epoch_(NextEpoch()) {}

  /// Copies take a fresh epoch and empty journals: caches keyed on the
  /// source must not treat the copy as incrementally-derivable.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  /// Moves keep the epoch and journals (unordered_set nodes — and
  /// therefore the journals' tuple pointers — survive a move); the source
  /// is left empty with a fresh epoch.
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  int arity() const { return arity_; }
  size_t size() const { return tuples_.size() + staged_rows(); }
  bool empty() const { return tuples_.empty() && staged_.empty(); }

  /// Inserts `t` (whose size must equal `arity()`); returns true if the
  /// tuple was not already present.
  bool Insert(const Tuple& t);
  bool Insert(Tuple&& t);

  /// Removes `t`; returns true if it was present. The epoch survives: the
  /// erase is recorded in `erase_journal()` so incremental consumers can
  /// remove exactly this tuple instead of rebuilding.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const {
    MaterializeStaged();
    return tuples_.count(t) > 0;
  }

  /// Appends `rows` flat rows of `arity()` values each (arity >= 1). The
  /// caller guarantees the rows are mutually distinct and not already
  /// present — the columnar delta engine's produced-check establishes
  /// exactly that. The rows join the tuple set lazily; see the class
  /// comment.
  void AppendStagedRows(const Value* data, size_t rows);

  /// Rows appended but not yet folded into the tuple set.
  size_t staged_rows() const {
    return arity_ > 0 ? staged_.size() / static_cast<size_t>(arity_) : 0;
  }

  /// Folds staged rows into the tuple set and the journal (in staging
  /// order). No-op when nothing is staged; called implicitly by every
  /// tuple-level reader. Single-threaded: see the class comment.
  void MaterializeStaged() const;

  /// Inserts every tuple of `other` (same arity); returns the number of
  /// tuples that were new.
  size_t UnionWith(const Relation& other);

  void Clear();

  const_iterator begin() const {
    MaterializeStaged();
    return tuples_.begin();
  }
  const_iterator end() const { return tuples_.end(); }

  /// Tuples in lexicographic order — canonical form for printing, hashing
  /// and equality-sensitive tests.
  std::vector<Tuple> Sorted() const;

  /// Set equality (arity and contents).
  bool operator==(const Relation& other) const {
    MaterializeStaged();
    other.MaterializeStaged();
    return arity_ == other.arity_ && tuples_ == other.tuples_;
  }
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// Order-independent hash of the contents (sum of mixed per-tuple
  /// hashes — not XOR, which lets even multisets of colliding pairs
  /// cancel), used for instance-state fingerprinting in cycle detection.
  uint64_t ContentHash() const;

  // -- Incremental-maintenance introspection ---------------------------

  /// Monotonically increasing count of successful mutations.
  uint64_t generation() const { return generation_; }

  /// Globally unique id of the current journaled history. Changes on
  /// clear/copy/compaction; caches compare it to decide append vs rebuild.
  uint64_t epoch() const { return epoch_; }

  /// Tuples inserted during the current epoch, in insertion order. The
  /// pointers are stable for the relation's lifetime (unordered_set node
  /// stability) while the epoch is unchanged. An inserted-then-erased
  /// tuple keeps its journal entry — pair with `erase_journal()` to
  /// replay the true history.
  const std::vector<const Tuple*>& journal() const {
    MaterializeStaged();
    return journal_;
  }

  /// Tuples erased during the current epoch, in erase order; see
  /// `EraseEvent` for the interleaving contract.
  const std::vector<EraseEvent>& erase_journal() const {
    MaterializeStaged();
    return erase_journal_;
  }

  /// True if replaying the insert journal from position 0 and applying
  /// the erase journal reproduces the full contents (no clear / copy /
  /// compaction lost history).
  bool journal_complete() const { return journal_complete_; }

 private:
  /// Next value of the process-wide epoch counter.
  static uint64_t NextEpoch();

  /// Drops both journals and the graveyard under a fresh epoch when
  /// sustained churn makes the history larger than the live contents are
  /// worth. Deterministic: depends only on container sizes.
  void MaybeCompact();

  int arity_;
  /// Mutable with `journal_` and `staged_`: lazy materialization of
  /// staged rows is logically non-mutating (the contents were already
  /// part of the relation), it only changes their physical home.
  mutable TupleSet tuples_;
  mutable std::vector<const Tuple*> journal_;
  std::vector<EraseEvent> erase_journal_;
  /// Extracted nodes of erased tuples; keeps journal pointers alive until
  /// the next epoch change.
  std::vector<TupleSet::node_type> graveyard_;
  /// Staged flat rows, row-major, `arity_` values per row.
  mutable std::vector<Value> staged_;
  uint64_t epoch_;
  uint64_t generation_ = 0;
  bool journal_complete_ = true;
};

}  // namespace datalog

#endif  // UNCHAINED_RA_RELATION_H_
