#ifndef UNCHAINED_RA_RELATION_H_
#define UNCHAINED_RA_RELATION_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "ra/tuple.h"

namespace datalog {

/// A relation instance: a finite set of constant tuples of a fixed arity
/// (Section 2). Insertion is idempotent; iteration order is unspecified —
/// use `Sorted()` when a canonical order is needed.
///
/// Incremental-maintenance support: every relation carries
///  * a `generation()` counter, bumped on every successful mutation, so
///    caches can cheaply detect "nothing changed";
///  * an insertion *journal* — stable pointers to every tuple inserted
///    since the last non-monotone event — so index and active-domain
///    caches can append just the new tuples instead of rebuilding;
///  * a globally unique `epoch()`, refreshed on every non-monotone event
///    (erase, clear, copy), so a cache holding (epoch, journal position)
///    can prove its incremental view is still valid. Epochs are drawn from
///    a process-wide counter: two distinct relation states never share an
///    epoch by accident, which makes the check sound even when engines
///    swap whole instances in and out (the caches then fall back to a full
///    rebuild).
class Relation {
 public:
  using TupleSet = std::unordered_set<Tuple, TupleHash>;
  using const_iterator = TupleSet::const_iterator;

  /// Creates an empty relation of the given arity (>= 0; arity 0 models
  /// propositional predicates such as `delay` in Example 4.4).
  explicit Relation(int arity = 0) : arity_(arity), epoch_(NextEpoch()) {}

  /// Copies take a fresh epoch and an empty journal: caches keyed on the
  /// source must not treat the copy as incrementally-derivable.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  /// Moves keep the epoch and journal (unordered_set nodes — and therefore
  /// the journal's tuple pointers — survive a move); the source is left
  /// empty with a fresh epoch.
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  int arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts `t` (whose size must equal `arity()`); returns true if the
  /// tuple was not already present.
  bool Insert(const Tuple& t);
  bool Insert(Tuple&& t);

  /// Removes `t`; returns true if it was present. A successful erase is a
  /// non-monotone event: the epoch changes and the journal resets.
  bool Erase(const Tuple& t);

  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }

  /// Inserts every tuple of `other` (same arity); returns the number of
  /// tuples that were new.
  size_t UnionWith(const Relation& other);

  void Clear();

  const_iterator begin() const { return tuples_.begin(); }
  const_iterator end() const { return tuples_.end(); }

  /// Tuples in lexicographic order — canonical form for printing, hashing
  /// and equality-sensitive tests.
  std::vector<Tuple> Sorted() const;

  /// Set equality (arity and contents).
  bool operator==(const Relation& other) const {
    return arity_ == other.arity_ && tuples_ == other.tuples_;
  }
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// Order-independent hash of the contents (XOR of per-tuple hashes), used
  /// for instance-state fingerprinting in cycle detection.
  uint64_t ContentHash() const;

  // -- Incremental-maintenance introspection ---------------------------

  /// Monotonically increasing count of successful mutations.
  uint64_t generation() const { return generation_; }

  /// Globally unique id of the current monotone growth phase. Changes on
  /// erase/clear/copy; caches compare it to decide append vs rebuild.
  uint64_t epoch() const { return epoch_; }

  /// Tuples inserted during the current epoch, in insertion order. The
  /// pointers are stable for the relation's lifetime (unordered_set node
  /// stability) while the epoch is unchanged.
  const std::vector<const Tuple*>& journal() const { return journal_; }

  /// True if the journal covers every tuple of the relation (no erase /
  /// clear / copy lost history) — i.e. a consumer starting at journal
  /// position 0 sees the full contents.
  bool journal_complete() const { return journal_complete_; }

 private:
  /// Next value of the process-wide epoch counter.
  static uint64_t NextEpoch();

  int arity_;
  TupleSet tuples_;
  std::vector<const Tuple*> journal_;
  uint64_t epoch_;
  uint64_t generation_ = 0;
  bool journal_complete_ = true;
};

}  // namespace datalog

#endif  // UNCHAINED_RA_RELATION_H_
