#include "ra/instance.h"

#include <algorithm>
#include <map>
#include <mutex>

namespace datalog {

namespace {
const Relation& EmptyRelation(int arity) {
  // Pre-built past any arity the matcher supports (its index masks cap
  // columns at 32), so concurrent Rel() calls from parallel workers are
  // pure reads; the rare larger arity grows a mutex-guarded overflow.
  constexpr int kPrebuilt = 64;
  static const std::vector<Relation>* cache = [] {
    auto* v = new std::vector<Relation>();
    v->reserve(kPrebuilt);
    for (int a = 0; a < kPrebuilt; ++a) v->emplace_back(a);
    return v;
  }();
  if (arity < kPrebuilt) return (*cache)[static_cast<size_t>(arity)];
  static std::mutex overflow_mu;
  static std::map<int, Relation>* overflow = new std::map<int, Relation>();
  std::lock_guard<std::mutex> lock(overflow_mu);
  return overflow->try_emplace(arity, arity).first->second;
}
}  // namespace

const Relation& Instance::Rel(PredId p) const {
  auto it = relations_.find(p);
  if (it != relations_.end()) return it->second;
  return EmptyRelation(catalog_->ArityOf(p));
}

Relation* Instance::MutableRel(PredId p) {
  auto it = relations_.find(p);
  if (it == relations_.end()) {
    it = relations_.emplace(p, Relation(catalog_->ArityOf(p))).first;
  }
  return &it->second;
}

bool Instance::Erase(PredId p, const Tuple& t) {
  auto it = relations_.find(p);
  return it != relations_.end() && it->second.Erase(t);
}

size_t Instance::UnionWith(const Instance& other) {
  size_t added = 0;
  for (const auto& [p, rel] : other.relations_) {
    if (rel.empty()) continue;
    added += MutableRel(p)->UnionWith(rel);
  }
  return added;
}

size_t Instance::TotalFacts() const {
  size_t n = 0;
  for (const auto& [p, rel] : relations_) n += rel.size();
  return n;
}

uint64_t Instance::Generation() const {
  uint64_t g = static_cast<uint64_t>(relations_.size());
  for (const auto& [p, rel] : relations_) g += rel.generation();
  return g;
}

std::set<Value> Instance::ActiveDomain() const {
  std::set<Value> dom;
  for (const auto& [p, rel] : relations_) {
    for (const Tuple& t : rel) dom.insert(t.begin(), t.end());
  }
  return dom;
}

bool Instance::operator==(const Instance& other) const {
  // Lazily absent relations equal empty ones, so compare via SubsetOf both
  // ways rather than comparing the maps.
  return SubsetOf(other) && other.SubsetOf(*this);
}

bool Instance::SubsetOf(const Instance& other) const {
  for (const auto& [p, rel] : relations_) {
    if (rel.empty()) continue;
    const Relation& o = other.Rel(p);
    if (o.size() < rel.size()) return false;
    for (const Tuple& t : rel) {
      if (!o.Contains(t)) return false;
    }
  }
  return true;
}

uint64_t Instance::Fingerprint() const {
  uint64_t h = 0;
  for (const auto& [p, rel] : relations_) {
    if (rel.empty()) continue;
    uint64_t x =
        rel.ContentHash() +
        uint64_t{0x9e3779b97f4a7c15} * static_cast<uint64_t>(p + 1);
    x ^= x >> 29;
    x *= uint64_t{0xbf58476d1ce4e5b9};
    x ^= x >> 32;
    // Sum, not XOR, for the same cancellation-resistance reason as
    // Relation::ContentHash.
    h += x;
  }
  return h;
}

std::string Instance::ToString(const SymbolTable& symbols) const {
  // Predicates in catalog order, tuples in lexicographic order.
  std::string out;
  std::vector<PredId> preds;
  preds.reserve(relations_.size());
  for (const auto& [p, rel] : relations_) {
    if (!rel.empty()) preds.push_back(p);
  }
  std::sort(preds.begin(), preds.end());
  for (PredId p : preds) {
    for (const Tuple& t : Rel(p).Sorted()) {
      out += catalog_->NameOf(p);
      if (!t.empty()) {
        out += '(';
        for (size_t i = 0; i < t.size(); ++i) {
          if (i > 0) out += ", ";
          out += symbols.NameOf(t[i]);
        }
        out += ')';
      }
      out += ".\n";
    }
  }
  return out;
}

Instance Instance::Restrict(const std::vector<PredId>& preds) const {
  Instance out(catalog_);
  for (PredId p : preds) {
    const Relation& rel = Rel(p);
    if (!rel.empty()) *out.MutableRel(p) = rel;
  }
  return out;
}

namespace {

void AppendU32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

bool ReadU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  uint32_t out = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    out |= static_cast<uint32_t>(static_cast<unsigned char>(in[*pos])) << shift;
    ++*pos;
  }
  *v = out;
  return true;
}

/// Snapshot format tag; bump when the layout changes.
constexpr uint32_t kSnapshotMagic = 0x31534455;  // "UDS1"

}  // namespace

std::string Instance::SerializeSnapshot() const {
  std::vector<PredId> preds;
  preds.reserve(relations_.size());
  for (const auto& [p, rel] : relations_) {
    if (!rel.empty()) preds.push_back(p);
  }
  std::sort(preds.begin(), preds.end());
  std::string out;
  AppendU32(&out, kSnapshotMagic);
  AppendU32(&out, static_cast<uint32_t>(preds.size()));
  for (PredId p : preds) {
    const Relation& rel = Rel(p);
    AppendU32(&out, static_cast<uint32_t>(p));
    AppendU32(&out, static_cast<uint32_t>(rel.arity()));
    AppendU32(&out, static_cast<uint32_t>(rel.size()));
    for (const Tuple& t : rel.Sorted()) {
      for (Value v : t) AppendU32(&out, static_cast<uint32_t>(v));
    }
  }
  return out;
}

Status Instance::RestoreSnapshot(const std::string& snapshot) {
  relations_.clear();
  size_t pos = 0;
  uint32_t magic = 0;
  uint32_t num_preds = 0;
  if (!ReadU32(snapshot, &pos, &magic) || magic != kSnapshotMagic ||
      !ReadU32(snapshot, &pos, &num_preds)) {
    return Status::Internal("instance snapshot: bad header");
  }
  for (uint32_t i = 0; i < num_preds; ++i) {
    uint32_t pred = 0;
    uint32_t arity = 0;
    uint32_t count = 0;
    if (!ReadU32(snapshot, &pos, &pred) || !ReadU32(snapshot, &pos, &arity) ||
        !ReadU32(snapshot, &pos, &count)) {
      return Status::Internal("instance snapshot: truncated relation header");
    }
    const PredId p = static_cast<PredId>(pred);
    if (p < 0 || p >= catalog_->size() ||
        catalog_->ArityOf(p) != static_cast<int>(arity)) {
      return Status::Internal(
          "instance snapshot: predicate/arity mismatch with catalog");
    }
    Relation* rel = MutableRel(p);
    for (uint32_t k = 0; k < count; ++k) {
      Tuple t(arity);
      for (uint32_t c = 0; c < arity; ++c) {
        uint32_t v = 0;
        if (!ReadU32(snapshot, &pos, &v)) {
          return Status::Internal("instance snapshot: truncated tuple data");
        }
        t[c] = static_cast<Value>(v);
      }
      rel->Insert(std::move(t));
    }
  }
  if (pos != snapshot.size()) {
    return Status::Internal("instance snapshot: trailing bytes");
  }
  return Status::OK();
}

}  // namespace datalog
