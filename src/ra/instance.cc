#include "ra/instance.h"

#include <algorithm>
#include <map>
#include <mutex>

namespace datalog {

namespace {
const Relation& EmptyRelation(int arity) {
  // Pre-built past any arity the matcher supports (its index masks cap
  // columns at 32), so concurrent Rel() calls from parallel workers are
  // pure reads; the rare larger arity grows a mutex-guarded overflow.
  constexpr int kPrebuilt = 64;
  static const std::vector<Relation>* cache = [] {
    auto* v = new std::vector<Relation>();
    v->reserve(kPrebuilt);
    for (int a = 0; a < kPrebuilt; ++a) v->emplace_back(a);
    return v;
  }();
  if (arity < kPrebuilt) return (*cache)[arity];
  static std::mutex overflow_mu;
  static std::map<int, Relation>* overflow = new std::map<int, Relation>();
  std::lock_guard<std::mutex> lock(overflow_mu);
  return overflow->try_emplace(arity, arity).first->second;
}
}  // namespace

const Relation& Instance::Rel(PredId p) const {
  auto it = relations_.find(p);
  if (it != relations_.end()) return it->second;
  return EmptyRelation(catalog_->ArityOf(p));
}

Relation* Instance::MutableRel(PredId p) {
  auto it = relations_.find(p);
  if (it == relations_.end()) {
    it = relations_.emplace(p, Relation(catalog_->ArityOf(p))).first;
  }
  return &it->second;
}

bool Instance::Erase(PredId p, const Tuple& t) {
  auto it = relations_.find(p);
  return it != relations_.end() && it->second.Erase(t);
}

size_t Instance::UnionWith(const Instance& other) {
  size_t added = 0;
  for (const auto& [p, rel] : other.relations_) {
    if (rel.empty()) continue;
    added += MutableRel(p)->UnionWith(rel);
  }
  return added;
}

size_t Instance::TotalFacts() const {
  size_t n = 0;
  for (const auto& [p, rel] : relations_) n += rel.size();
  return n;
}

uint64_t Instance::Generation() const {
  uint64_t g = static_cast<uint64_t>(relations_.size());
  for (const auto& [p, rel] : relations_) g += rel.generation();
  return g;
}

std::set<Value> Instance::ActiveDomain() const {
  std::set<Value> dom;
  for (const auto& [p, rel] : relations_) {
    for (const Tuple& t : rel) dom.insert(t.begin(), t.end());
  }
  return dom;
}

bool Instance::operator==(const Instance& other) const {
  // Lazily absent relations equal empty ones, so compare via SubsetOf both
  // ways rather than comparing the maps.
  return SubsetOf(other) && other.SubsetOf(*this);
}

bool Instance::SubsetOf(const Instance& other) const {
  for (const auto& [p, rel] : relations_) {
    if (rel.empty()) continue;
    const Relation& o = other.Rel(p);
    if (o.size() < rel.size()) return false;
    for (const Tuple& t : rel) {
      if (!o.Contains(t)) return false;
    }
  }
  return true;
}

uint64_t Instance::Fingerprint() const {
  uint64_t h = 0;
  for (const auto& [p, rel] : relations_) {
    if (rel.empty()) continue;
    uint64_t x = rel.ContentHash() + 0x9e3779b97f4a7c15ull *
                                         static_cast<uint64_t>(p + 1);
    x ^= x >> 29;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 32;
    h ^= x;
  }
  return h;
}

std::string Instance::ToString(const SymbolTable& symbols) const {
  // Predicates in catalog order, tuples in lexicographic order.
  std::string out;
  std::vector<PredId> preds;
  preds.reserve(relations_.size());
  for (const auto& [p, rel] : relations_) {
    if (!rel.empty()) preds.push_back(p);
  }
  std::sort(preds.begin(), preds.end());
  for (PredId p : preds) {
    for (const Tuple& t : Rel(p).Sorted()) {
      out += catalog_->NameOf(p);
      if (!t.empty()) {
        out += '(';
        for (size_t i = 0; i < t.size(); ++i) {
          if (i > 0) out += ", ";
          out += symbols.NameOf(t[i]);
        }
        out += ')';
      }
      out += ".\n";
    }
  }
  return out;
}

Instance Instance::Restrict(const std::vector<PredId>& preds) const {
  Instance out(catalog_);
  for (PredId p : preds) {
    const Relation& rel = Rel(p);
    if (!rel.empty()) *out.MutableRel(p) = rel;
  }
  return out;
}

}  // namespace datalog
