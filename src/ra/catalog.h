#ifndef UNCHAINED_RA_CATALOG_H_
#define UNCHAINED_RA_CATALOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "base/status.h"

namespace datalog {

/// Identifier of a relation schema (predicate symbol). Dense, starting
/// at 0, scoped to one `Catalog`.
using PredId = int32_t;

/// The database schema (Section 2): the set of relation symbols in play,
/// each with a fixed arity. Shared by programs, instances and engines; a
/// `Catalog` outlives the instances that reference it.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers (or looks up) predicate `name` with the given arity. Returns
  /// `kSchemaError` if `name` is already registered with a different arity.
  Result<PredId> Declare(std::string_view name, int arity);

  /// Looks up `name`; returns -1 if unknown.
  PredId Find(std::string_view name) const;

  int ArityOf(PredId p) const { return arities_[static_cast<size_t>(p)]; }
  const std::string& NameOf(PredId p) const {
    return names_[static_cast<size_t>(p)];
  }
  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::vector<int> arities_;
  std::unordered_map<std::string, PredId> by_name_;
};

}  // namespace datalog

#endif  // UNCHAINED_RA_CATALOG_H_
