#ifndef UNCHAINED_RA_INSTANCE_H_
#define UNCHAINED_RA_INSTANCE_H_

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/symbols.h"
#include "ra/catalog.h"
#include "ra/relation.h"

namespace datalog {

/// A database instance over a `Catalog` (Section 2): a mapping from each
/// relation symbol to a finite relation of the declared arity. Relations
/// are materialized lazily; an absent relation is the empty one.
///
/// Instances are value types (copyable) — the nondeterministic engines and
/// the Datalog¬¬ cycle detector snapshot and compare them freely.
class Instance {
 public:
  /// `catalog` must outlive the instance.
  explicit Instance(const Catalog* catalog) : catalog_(catalog) {}

  const Catalog& catalog() const { return *catalog_; }

  /// Read access; returns a shared empty relation if `p` has no tuples.
  const Relation& Rel(PredId p) const;

  /// Mutable access; materializes an empty relation on first touch.
  Relation* MutableRel(PredId p);

  bool Contains(PredId p, const Tuple& t) const { return Rel(p).Contains(t); }

  /// Inserts a fact; returns true if new.
  bool Insert(PredId p, const Tuple& t) { return MutableRel(p)->Insert(t); }

  /// Removes a fact; returns true if it was present.
  bool Erase(PredId p, const Tuple& t);

  /// Adds every fact of `other` (same catalog); returns #new facts.
  size_t UnionWith(const Instance& other);

  /// Total number of facts.
  size_t TotalFacts() const;

  /// The set of domain values occurring in any fact — adom(I).
  std::set<Value> ActiveDomain() const;

  /// Sum of the relations' mutation counters (plus the number of
  /// materialized relations): monotonically increasing while the instance
  /// only grows, and cheap enough (#predicates, not #facts) to poll each
  /// round. Caches use it as a fast "anything changed?" probe before the
  /// per-relation epoch/journal walk.
  uint64_t Generation() const;

  /// Read-only view of the materialized relations, for incremental caches
  /// (IndexManager, AdomCache) that track per-predicate epochs/journals.
  /// Absent predicates are empty; relations are never un-materialized.
  const std::unordered_map<PredId, Relation>& relations() const {
    return relations_;
  }

  /// Folds any staged columnar rows of every relation into its tuple set
  /// (see Relation::MaterializeStaged). Materialization happens lazily on
  /// tuple-level reads but is not safe against concurrent first-reads:
  /// evaluators call this from a single thread before sharing a
  /// possibly-staged instance across pool workers.
  void MaterializeStaged() const {
    for (const auto& kv : relations_) kv.second.MaterializeStaged();
  }

  /// Deep equality over all (possibly lazily absent) relations.
  bool operator==(const Instance& other) const;
  bool operator!=(const Instance& other) const { return !(*this == other); }

  /// True if every fact of this instance is in `other`.
  bool SubsetOf(const Instance& other) const;

  /// Order-independent 64-bit fingerprint of the full contents. Equal
  /// instances have equal fingerprints; collisions are possible, so cycle
  /// detectors confirm with `operator==`.
  uint64_t Fingerprint() const;

  /// Canonical human-readable listing: facts sorted per predicate, e.g.
  ///   "g(a, b). g(b, c). t(a, b)." — used by tests and examples.
  std::string ToString(const SymbolTable& symbols) const;

  /// Copy containing only the relations in `preds` — used to project the
  /// answer/idb part of an evaluation result.
  Instance Restrict(const std::vector<PredId>& preds) const;

  // -- Checkpointing -----------------------------------------------------

  /// Serializes the full contents into a compact byte snapshot:
  /// predicates ascending, tuples in lexicographic order, values as
  /// little-endian 32-bit words. Deterministic — equal instances produce
  /// identical bytes — so snapshot sizes (dist.checkpoint_bytes) and
  /// golden tests are reproducible. This is the checkpoint half of the
  /// crash/recovery story in docs/distribution.md.
  std::string SerializeSnapshot() const;

  /// Replaces the contents with the snapshot's, dropping everything the
  /// instance currently holds (rebuilt relations take fresh epochs, so
  /// incremental caches over this instance fall back to a full rebuild).
  /// The catalog must declare every predicate in the snapshot with a
  /// matching arity. On a corrupt snapshot, returns an error and leaves
  /// the instance empty.
  Status RestoreSnapshot(const std::string& snapshot);

 private:
  const Catalog* catalog_;
  std::unordered_map<PredId, Relation> relations_;
};

}  // namespace datalog

#endif  // UNCHAINED_RA_INSTANCE_H_
