#ifndef UNCHAINED_RA_TUPLE_H_
#define UNCHAINED_RA_TUPLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/symbols.h"

namespace datalog {

/// A constant tuple over a relation schema (Section 2): a fixed-length
/// vector of domain values. Column identity is positional.
using Tuple = std::vector<Value>;

/// FNV-1a style hash over the tuple contents, usable as the hasher of
/// `std::unordered_set<Tuple>`.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    uint64_t h = 1469598103934665603ull;
    for (Value v : t) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(v));
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace datalog

#endif  // UNCHAINED_RA_TUPLE_H_
