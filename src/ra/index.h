#ifndef UNCHAINED_RA_INDEX_H_
#define UNCHAINED_RA_INDEX_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "ra/instance.h"
#include "ra/relation.h"
#include "ra/tuple.h"

namespace datalog {

/// Persistent hash indexes over the relations of an evaluation's database,
/// keyed by (predicate, bitmask of bound column positions); buckets map the
/// bound-column values to the matching tuples.
///
/// Unlike the per-round caches the engines used to rebuild from scratch,
/// an IndexManager lives for a whole evaluation (it is owned by the
/// EvalContext) and maintains its indexes *incrementally*: each index
/// remembers the relation epoch and journal position it has consumed, and
/// a lookup first appends any tuples inserted since — O(new tuples), not
/// O(relation). Non-monotone mutations (erase, clear, instance swaps —
/// anything that changes the relation's epoch) are detected by the epoch
/// check and trigger a full rebuild of that index, which is the
/// correctness fallback for the non-inflationary engines.
///
/// Bucket tuple pointers stay valid because `Relation`'s journal pointers
/// are node-stable for the lifetime of an epoch; an epoch change discards
/// them before they can dangle.
class IndexManager {
 public:
  using Bucket = std::vector<const Tuple*>;

  /// Maintenance counters, surfaced through EvalStats.
  struct Counters {
    /// Lookups served by an index that was already up to date.
    int64_t hits = 0;
    /// First-time builds of a (pred, mask) index.
    int64_t builds = 0;
    /// Full rebuilds forced by an epoch change (non-monotone mutation).
    int64_t rebuilds = 0;
    /// Tuples appended incrementally from relation journals.
    int64_t appended = 0;
  };

  IndexManager() = default;
  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// Returns the tuples of `db.Rel(pred)` whose columns selected by `mask`
  /// (bit i = column i bound) equal `key` (the bound values, in column
  /// order), bringing the index up to date first. Returns nullptr for an
  /// empty bucket.
  const Bucket* Lookup(const Instance& db, PredId pred, uint32_t mask,
                       const Tuple& key);

  /// Drops every index (used by tests; evaluation contexts simply let the
  /// manager go out of scope).
  void Clear() { indexes_.clear(); }

  const Counters& counters() const { return counters_; }

 private:
  struct Index {
    std::unordered_map<Tuple, Bucket, TupleHash> buckets;
    /// Epoch of the relation contents the index reflects.
    uint64_t epoch = 0;
    /// Journal entries consumed so far within that epoch.
    size_t journal_pos = 0;
  };

  /// Appends journal entries [index->journal_pos, journal.size()) of `rel`.
  void Append(const Relation& rel, uint32_t mask, Index* index);
  /// Rebuilds `index` from the full contents of `rel`.
  void Rebuild(const Relation& rel, uint32_t mask, Index* index);

  std::map<std::pair<PredId, uint32_t>, Index> indexes_;
  Counters counters_;
};

}  // namespace datalog

#endif  // UNCHAINED_RA_INDEX_H_
