#ifndef UNCHAINED_RA_INDEX_H_
#define UNCHAINED_RA_INDEX_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "ra/instance.h"
#include "ra/relation.h"
#include "ra/storage/bitmap.h"
#include "ra/tuple.h"

namespace datalog {

/// Persistent hash indexes over the relations of an evaluation's database,
/// keyed by (predicate, bitmask of bound column positions); buckets map the
/// bound-column values to the matching tuples.
///
/// Unlike the per-round caches the engines used to rebuild from scratch,
/// an IndexManager lives for a whole evaluation (it is owned by the
/// EvalContext) and maintains its indexes *incrementally*: each index
/// remembers the relation epoch and the insert/erase journal positions it
/// has consumed, and a lookup first replays any events since — appending
/// inserted tuples and removing erased ones in their true interleaved
/// order — O(new events), not O(relation). History-losing mutations
/// (clear, instance swaps, journal compaction — anything that changes the
/// relation's epoch) are detected by the epoch check and trigger a full
/// rebuild of that index, which is the correctness fallback for the
/// non-inflationary engines.
///
/// Bucket tuple pointers stay valid because `Relation`'s journal pointers
/// are node-stable for the lifetime of an epoch (erased nodes are parked
/// in the relation's graveyard); an epoch change discards them before
/// they can dangle.
///
/// Parallel rounds use the freeze-then-fan-out protocol: the evaluating
/// thread calls BeginParallel() before fanning a round's matching across
/// workers and EndParallel() after the barrier. In between, Lookup is
/// safe to call concurrently *provided the indexed relations stay
/// frozen* (the engines' round structure guarantees this and asserts on
/// Instance::Generation): an up-to-date index is served under a shared
/// lock, and a missing or stale one is built exactly once under an
/// exclusive lock. Because relations only reach a new state between
/// rounds, an index observed current stays current for the whole region,
/// so returned bucket pointers never mutate under a reader.
class IndexManager {
 public:
  using Bucket = std::vector<const Tuple*>;

  /// Maintenance counters, surfaced through EvalStats. Atomic (relaxed)
  /// so concurrent frozen-mode lookups can count; totals are sums and
  /// therefore identical across thread counts.
  struct Counters {
    /// Lookups served by an index that was already up to date.
    std::atomic<int64_t> hits{0};
    /// First-time builds of a (pred, mask) index.
    std::atomic<int64_t> builds{0};
    /// Full rebuilds forced by an epoch change (history-losing mutation).
    std::atomic<int64_t> rebuilds{0};
    /// Tuples appended incrementally from relation insert journals.
    std::atomic<int64_t> appended{0};
    /// Tuples removed incrementally from relation erase journals.
    std::atomic<int64_t> removed{0};
    /// Bitmap-index lookups served by an up-to-date bitmap.
    std::atomic<int64_t> bitmap_hits{0};
    /// First-time bitmap builds for a unary predicate.
    std::atomic<int64_t> bitmap_builds{0};
    /// Bitmap rebuilds forced by an epoch change.
    std::atomic<int64_t> bitmap_rebuilds{0};
    /// Values appended to bitmaps from relation journals.
    std::atomic<int64_t> bitmap_appended{0};
    /// Values removed from bitmaps via relation erase journals.
    std::atomic<int64_t> bitmap_removed{0};
  };

  IndexManager() = default;
  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// Returns the tuples of `db.Rel(pred)` whose columns selected by `mask`
  /// (bit i = column i bound) equal `key` (the bound values, in column
  /// order), bringing the index up to date first. Returns nullptr for an
  /// empty bucket.
  const Bucket* Lookup(const Instance& db, PredId pred, uint32_t mask,
                       const Tuple& key);

  /// The compressed bitmap index over the unary relation `db.Rel(pred)`
  /// (docs/storage.md), brought up to date first through the same
  /// epoch/journal protocol as the hash indexes. Returns nullptr if the
  /// predicate is not unary. Bitmap indexes serve the columnar backend's
  /// sequential delta path and are not part of the frozen-parallel
  /// contract: calling this between BeginParallel/EndParallel is a bug.
  const storage::ValueBitmap* UnaryBitmap(const Instance& db, PredId pred);

  /// Enters frozen parallel mode: until EndParallel, Lookup may be called
  /// from multiple threads (see class comment for the freeze contract).
  void BeginParallel() { parallel_ = true; }
  void EndParallel() { parallel_ = false; }

  /// Drops every index (used by tests; evaluation contexts simply let the
  /// manager go out of scope).
  void Clear() {
    indexes_.clear();
    bitmaps_.clear();
  }

  const Counters& counters() const { return counters_; }

 private:
  struct Index {
    std::unordered_map<Tuple, Bucket, TupleHash> buckets;
    /// Epoch of the relation contents the index reflects.
    uint64_t epoch = 0;
    /// Insert-journal entries consumed so far within that epoch.
    size_t journal_pos = 0;
    /// Erase-journal entries consumed so far within that epoch.
    size_t erase_pos = 0;
  };

  /// A compressed bitmap over a unary relation, maintained by the same
  /// epoch/journal protocol as Index.
  struct BitmapIndex {
    storage::ValueBitmap bitmap;
    uint64_t epoch = 0;
    size_t journal_pos = 0;
    size_t erase_pos = 0;
  };

  /// Replays insert-journal entries [index->journal_pos, journal.size())
  /// and erase-journal entries [index->erase_pos, erases.size()) of
  /// `rel`, merged in event order.
  void Append(const Relation& rel, uint32_t mask, Index* index);
  /// Rebuilds `index` from the full contents of `rel`.
  void Rebuild(const Relation& rel, uint32_t mask, Index* index);
  /// The pre-parallel Lookup body; in parallel mode runs under `mu_`.
  const Bucket* LookupLocked(const Relation& rel, PredId pred, uint32_t mask,
                             const Tuple& key);

  std::map<std::pair<PredId, uint32_t>, Index> indexes_;
  std::map<PredId, BitmapIndex> bitmaps_;
  Counters counters_;
  bool parallel_ = false;
  std::shared_mutex mu_;
};

}  // namespace datalog

#endif  // UNCHAINED_RA_INDEX_H_
