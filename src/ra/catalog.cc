#include "ra/catalog.h"

namespace datalog {

Result<PredId> Catalog::Declare(std::string_view name, int arity) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    PredId id = it->second;
    const size_t slot = static_cast<size_t>(id);
    if (arities_[slot] != arity) {
      return Status::SchemaError("predicate '" + std::string(name) +
                                 "' used with arity " + std::to_string(arity) +
                                 " but declared with arity " +
                                 std::to_string(arities_[slot]));
    }
    return id;
  }
  PredId id = static_cast<PredId>(names_.size());
  by_name_.emplace(std::string(name), id);
  names_.emplace_back(name);
  arities_.push_back(arity);
  return id;
}

PredId Catalog::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? -1 : it->second;
}

}  // namespace datalog
