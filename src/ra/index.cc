#include "ra/index.h"

#include <cassert>
#include <mutex>

#include "obs/trace.h"

namespace datalog {

namespace {

/// The bound-column projection of `t` under `mask`, reusing `scratch`.
void ProjectKey(const Tuple& t, uint32_t mask, Tuple* scratch) {
  scratch->clear();
  for (size_t c = 0; c < t.size(); ++c) {
    if (mask & (1u << c)) scratch->push_back(t[c]);
  }
}

}  // namespace

void IndexManager::Append(const Relation& rel, uint32_t mask, Index* index) {
  const std::vector<const Tuple*>& journal = rel.journal();
  Tuple key;
  for (size_t i = index->journal_pos; i < journal.size(); ++i) {
    const Tuple* t = journal[i];
    ProjectKey(*t, mask, &key);
    index->buckets[key].push_back(t);
  }
  counters_.appended.fetch_add(
      static_cast<int64_t>(journal.size() - index->journal_pos),
      std::memory_order_relaxed);
  index->journal_pos = journal.size();
}

void IndexManager::Rebuild(const Relation& rel, uint32_t mask, Index* index) {
  index->buckets.clear();
  Tuple key;
  for (const Tuple& t : rel) {
    ProjectKey(t, mask, &key);
    index->buckets[key].push_back(&t);
  }
  index->epoch = rel.epoch();
  index->journal_pos = rel.journal().size();
}

const IndexManager::Bucket* IndexManager::LookupLocked(const Relation& rel,
                                                       PredId pred,
                                                       uint32_t mask,
                                                       const Tuple& key) {
  auto [it, created] = indexes_.try_emplace(std::make_pair(pred, mask));
  Index& index = it->second;
  // Spans cover only the maintenance paths; the hit path is far too hot
  // to trace per lookup (it is counted, not spanned).
  if (created) {
    counters_.builds.fetch_add(1, std::memory_order_relaxed);
    OBS_SPAN("index.build", {{"pred", pred}, {"mask", mask}});
    Rebuild(rel, mask, &index);
  } else if (index.epoch != rel.epoch()) {
    // Non-monotone mutation (or a different instance supplied the
    // relation): the incremental view is unprovable — rebuild.
    counters_.rebuilds.fetch_add(1, std::memory_order_relaxed);
    OBS_SPAN("index.rebuild", {{"pred", pred}, {"mask", mask}});
    Rebuild(rel, mask, &index);
  } else if (index.journal_pos != rel.journal().size()) {
    OBS_SPAN("index.append", {{"pred", pred}, {"mask", mask}});
    Append(rel, mask, &index);
  } else {
    counters_.hits.fetch_add(1, std::memory_order_relaxed);
  }
  auto bit = index.buckets.find(key);
  return bit == index.buckets.end() ? nullptr : &bit->second;
}

const storage::ValueBitmap* IndexManager::UnaryBitmap(const Instance& db,
                                                      PredId pred) {
  assert(!parallel_ &&
         "bitmap indexes serve the sequential columnar path only");
  const Relation& rel = db.Rel(pred);
  if (rel.arity() != 1) return nullptr;
  auto [it, created] = bitmaps_.try_emplace(pred);
  BitmapIndex& index = it->second;
  if (created || index.epoch != rel.epoch()) {
    if (created) {
      counters_.bitmap_builds.fetch_add(1, std::memory_order_relaxed);
      OBS_SPAN("index.bitmap_build", {{"pred", pred}});
    } else {
      counters_.bitmap_rebuilds.fetch_add(1, std::memory_order_relaxed);
      OBS_SPAN("index.bitmap_rebuild", {{"pred", pred}});
    }
    index.bitmap.Clear();
    for (const Tuple& t : rel) index.bitmap.Add(t[0]);
    index.epoch = rel.epoch();
    index.journal_pos = rel.journal().size();
  } else if (index.journal_pos != rel.journal().size()) {
    OBS_SPAN("index.bitmap_append", {{"pred", pred}});
    const auto& journal = rel.journal();
    counters_.bitmap_appended.fetch_add(
        static_cast<int64_t>(journal.size() - index.journal_pos),
        std::memory_order_relaxed);
    for (size_t i = index.journal_pos; i < journal.size(); ++i) {
      index.bitmap.Add((*journal[i])[0]);
    }
    index.journal_pos = journal.size();
  } else {
    counters_.bitmap_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return &index.bitmap;
}

const IndexManager::Bucket* IndexManager::Lookup(const Instance& db,
                                                 PredId pred, uint32_t mask,
                                                 const Tuple& key) {
  const Relation& rel = db.Rel(pred);
  if (!parallel_) return LookupLocked(rel, pred, mask, key);

  // Frozen parallel mode. Fast path: an index already covering the
  // relation's (frozen) state is immutable for the rest of the region, so
  // a shared lock suffices and the bucket pointer stays valid after
  // release. Slow path: build/refresh exactly once under the exclusive
  // lock; a second thread racing here re-checks and lands in the hit
  // branch, keeping counter totals identical to a sequential run.
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = indexes_.find(std::make_pair(pred, mask));
    if (it != indexes_.end() && it->second.epoch == rel.epoch() &&
        it->second.journal_pos == rel.journal().size()) {
      counters_.hits.fetch_add(1, std::memory_order_relaxed);
      auto bit = it->second.buckets.find(key);
      return bit == it->second.buckets.end() ? nullptr : &bit->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  return LookupLocked(rel, pred, mask, key);
}

}  // namespace datalog
