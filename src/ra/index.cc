#include "ra/index.h"

namespace datalog {

namespace {

/// The bound-column projection of `t` under `mask`, reusing `scratch`.
void ProjectKey(const Tuple& t, uint32_t mask, Tuple* scratch) {
  scratch->clear();
  for (size_t c = 0; c < t.size(); ++c) {
    if (mask & (1u << c)) scratch->push_back(t[c]);
  }
}

}  // namespace

void IndexManager::Append(const Relation& rel, uint32_t mask, Index* index) {
  const std::vector<const Tuple*>& journal = rel.journal();
  Tuple key;
  for (size_t i = index->journal_pos; i < journal.size(); ++i) {
    const Tuple* t = journal[i];
    ProjectKey(*t, mask, &key);
    index->buckets[key].push_back(t);
    ++counters_.appended;
  }
  index->journal_pos = journal.size();
}

void IndexManager::Rebuild(const Relation& rel, uint32_t mask, Index* index) {
  index->buckets.clear();
  Tuple key;
  for (const Tuple& t : rel) {
    ProjectKey(t, mask, &key);
    index->buckets[key].push_back(&t);
  }
  index->epoch = rel.epoch();
  index->journal_pos = rel.journal().size();
}

const IndexManager::Bucket* IndexManager::Lookup(const Instance& db,
                                                 PredId pred, uint32_t mask,
                                                 const Tuple& key) {
  const Relation& rel = db.Rel(pred);
  auto [it, created] = indexes_.try_emplace(std::make_pair(pred, mask));
  Index& index = it->second;
  if (created) {
    ++counters_.builds;
    Rebuild(rel, mask, &index);
  } else if (index.epoch != rel.epoch()) {
    // Non-monotone mutation (or a different instance supplied the
    // relation): the incremental view is unprovable — rebuild.
    ++counters_.rebuilds;
    Rebuild(rel, mask, &index);
  } else if (index.journal_pos != rel.journal().size()) {
    Append(rel, mask, &index);
  } else {
    ++counters_.hits;
  }
  auto bit = index.buckets.find(key);
  return bit == index.buckets.end() ? nullptr : &bit->second;
}

}  // namespace datalog
