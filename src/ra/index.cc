#include "ra/index.h"

#include <algorithm>
#include <cassert>
#include <mutex>

#include "obs/trace.h"

namespace datalog {

namespace {

/// The bound-column projection of `t` under `mask`, reusing `scratch`.
void ProjectKey(const Tuple& t, uint32_t mask, Tuple* scratch) {
  scratch->clear();
  for (size_t c = 0; c < t.size(); ++c) {
    if (mask & (1u << c)) scratch->push_back(t[c]);
  }
}

}  // namespace

void IndexManager::Append(const Relation& rel, uint32_t mask, Index* index) {
  const std::vector<const Tuple*>& journal = rel.journal();
  const std::vector<Relation::EraseEvent>& erases = rel.erase_journal();
  Tuple key;
  size_t ins = index->journal_pos;
  auto insert_up_to = [&](size_t limit) {
    for (; ins < limit; ++ins) {
      const Tuple* t = journal[ins];
      ProjectKey(*t, mask, &key);
      index->buckets[key].push_back(t);
    }
  };
  // Replay in event order: an erase whose tuple was inserted in the same
  // unconsumed tail must see that insert land first, or the
  // pointer-identity removal below would miss it.
  for (size_t e = index->erase_pos; e < erases.size(); ++e) {
    const Relation::EraseEvent& ev = erases[e];
    insert_up_to(std::min(std::max(ev.ins_pos, ins), journal.size()));
    ProjectKey(*ev.tuple, mask, &key);
    auto bit = index->buckets.find(key);
    if (bit != index->buckets.end()) {
      Bucket& bucket = bit->second;
      auto pos = std::find(bucket.begin(), bucket.end(), ev.tuple);
      if (pos != bucket.end()) bucket.erase(pos);
      if (bucket.empty()) index->buckets.erase(bit);
    }
  }
  insert_up_to(journal.size());
  counters_.appended.fetch_add(
      static_cast<int64_t>(journal.size() - index->journal_pos),
      std::memory_order_relaxed);
  counters_.removed.fetch_add(
      static_cast<int64_t>(erases.size() - index->erase_pos),
      std::memory_order_relaxed);
  index->journal_pos = journal.size();
  index->erase_pos = erases.size();
}

void IndexManager::Rebuild(const Relation& rel, uint32_t mask, Index* index) {
  index->buckets.clear();
  Tuple key;
  for (const Tuple& t : rel) {
    ProjectKey(t, mask, &key);
    index->buckets[key].push_back(&t);
  }
  index->epoch = rel.epoch();
  index->journal_pos = rel.journal().size();
  index->erase_pos = rel.erase_journal().size();
}

const IndexManager::Bucket* IndexManager::LookupLocked(const Relation& rel,
                                                       PredId pred,
                                                       uint32_t mask,
                                                       const Tuple& key) {
  auto [it, created] = indexes_.try_emplace(std::make_pair(pred, mask));
  Index& index = it->second;
  // Spans cover only the maintenance paths; the hit path is far too hot
  // to trace per lookup (it is counted, not spanned).
  if (created) {
    counters_.builds.fetch_add(1, std::memory_order_relaxed);
    OBS_SPAN("index.build", {{"pred", pred}, {"mask", mask}});
    Rebuild(rel, mask, &index);
  } else if (index.epoch != rel.epoch()) {
    // History-losing mutation (or a different instance supplied the
    // relation): the incremental view is unprovable — rebuild.
    counters_.rebuilds.fetch_add(1, std::memory_order_relaxed);
    OBS_SPAN("index.rebuild", {{"pred", pred}, {"mask", mask}});
    Rebuild(rel, mask, &index);
  } else if (index.journal_pos != rel.journal().size() ||
             index.erase_pos != rel.erase_journal().size()) {
    OBS_SPAN("index.append", {{"pred", pred}, {"mask", mask}});
    Append(rel, mask, &index);
  } else {
    counters_.hits.fetch_add(1, std::memory_order_relaxed);
  }
  auto bit = index.buckets.find(key);
  return bit == index.buckets.end() ? nullptr : &bit->second;
}

const storage::ValueBitmap* IndexManager::UnaryBitmap(const Instance& db,
                                                      PredId pred) {
  assert(!parallel_ &&
         "bitmap indexes serve the sequential columnar path only");
  const Relation& rel = db.Rel(pred);
  if (rel.arity() != 1) return nullptr;
  auto [it, created] = bitmaps_.try_emplace(pred);
  BitmapIndex& index = it->second;
  if (created || index.epoch != rel.epoch()) {
    if (created) {
      counters_.bitmap_builds.fetch_add(1, std::memory_order_relaxed);
      OBS_SPAN("index.bitmap_build", {{"pred", pred}});
    } else {
      counters_.bitmap_rebuilds.fetch_add(1, std::memory_order_relaxed);
      OBS_SPAN("index.bitmap_rebuild", {{"pred", pred}});
    }
    index.bitmap.Clear();
    for (const Tuple& t : rel) index.bitmap.Add(t[0]);
    index.epoch = rel.epoch();
    index.journal_pos = rel.journal().size();
    index.erase_pos = rel.erase_journal().size();
  } else if (index.journal_pos != rel.journal().size() ||
             index.erase_pos != rel.erase_journal().size()) {
    OBS_SPAN("index.bitmap_append", {{"pred", pred}});
    const auto& journal = rel.journal();
    const auto& erases = rel.erase_journal();
    counters_.bitmap_appended.fetch_add(
        static_cast<int64_t>(journal.size() - index.journal_pos),
        std::memory_order_relaxed);
    counters_.bitmap_removed.fetch_add(
        static_cast<int64_t>(erases.size() - index.erase_pos),
        std::memory_order_relaxed);
    // Value-level replay must follow event order exactly: Add/Add/Remove
    // of the same value ends absent, Remove-then-reinsert ends present.
    size_t ins = index.journal_pos;
    auto add_up_to = [&](size_t limit) {
      for (; ins < limit; ++ins) index.bitmap.Add((*journal[ins])[0]);
    };
    for (size_t e = index.erase_pos; e < erases.size(); ++e) {
      const Relation::EraseEvent& ev = erases[e];
      add_up_to(std::min(std::max(ev.ins_pos, ins), journal.size()));
      index.bitmap.Remove((*ev.tuple)[0]);
    }
    add_up_to(journal.size());
    index.journal_pos = journal.size();
    index.erase_pos = erases.size();
  } else {
    counters_.bitmap_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return &index.bitmap;
}

const IndexManager::Bucket* IndexManager::Lookup(const Instance& db,
                                                 PredId pred, uint32_t mask,
                                                 const Tuple& key) {
  const Relation& rel = db.Rel(pred);
  if (!parallel_) return LookupLocked(rel, pred, mask, key);

  // Frozen parallel mode. Fast path: an index already covering the
  // relation's (frozen) state is immutable for the rest of the region, so
  // a shared lock suffices and the bucket pointer stays valid after
  // release. Slow path: build/refresh exactly once under the exclusive
  // lock; a second thread racing here re-checks and lands in the hit
  // branch, keeping counter totals identical to a sequential run.
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = indexes_.find(std::make_pair(pred, mask));
    if (it != indexes_.end() && it->second.epoch == rel.epoch() &&
        it->second.journal_pos == rel.journal().size() &&
        it->second.erase_pos == rel.erase_journal().size()) {
      counters_.hits.fetch_add(1, std::memory_order_relaxed);
      auto bit = it->second.buckets.find(key);
      return bit == it->second.buckets.end() ? nullptr : &bit->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  return LookupLocked(rel, pred, mask, key);
}

}  // namespace datalog
