#include "ra/storage/row_set.h"

#include <cassert>

#include "ra/relation.h"

namespace datalog {
namespace storage {

namespace {

bool SameRow(const Value* a, const Value* b, size_t arity) {
  for (size_t c = 0; c < arity; ++c) {
    if (a[c] != b[c]) return false;
  }
  return true;
}

}  // namespace

void RowSet::Init(const Relation& rel) {
  assert(rel.arity() >= 1);
  arity_ = static_cast<size_t>(rel.arity());
  rows_ = 0;
  log_.clear();
  size_t cap = 16;
  while (cap < 2 * (rel.size() + 16)) cap <<= 1;
  slots_.assign(cap, 0);
  mask_ = cap - 1;
  log_.reserve(rel.size() * arity_);
  for (const Tuple& t : rel) Insert(t.data());
}

uint64_t RowSet::HashRow(const Value* row) const {
  uint64_t h = uint64_t{0x9e3779b97f4a7c15};
  for (size_t c = 0; c < arity_; ++c) {
    h ^= static_cast<uint64_t>(static_cast<int64_t>(row[c]));
    h *= uint64_t{0xff51afd7ed558ccd};
    h ^= h >> 33;
  }
  return h;
}

bool RowSet::Contains(const Value* row) const {
  size_t s = static_cast<size_t>(HashRow(row)) & mask_;
  while (true) {
    const uint32_t e = slots_[s];
    if (e == 0) return false;
    if (SameRow(log_.data() + (static_cast<size_t>(e) - 1) * arity_, row,
                arity_)) {
      return true;
    }
    s = (s + 1) & mask_;
  }
}

bool RowSet::Insert(const Value* row) {
  if ((rows_ + 1) * 2 > slots_.size()) Grow();
  size_t s = static_cast<size_t>(HashRow(row)) & mask_;
  while (true) {
    const uint32_t e = slots_[s];
    if (e == 0) {
      slots_[s] = static_cast<uint32_t>(rows_ + 1);
      log_.insert(log_.end(), row, row + arity_);
      ++rows_;
      return true;
    }
    if (SameRow(log_.data() + (static_cast<size_t>(e) - 1) * arity_, row,
                arity_)) {
      return false;
    }
    s = (s + 1) & mask_;
  }
}

void RowSet::Grow() {
  const size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
  std::vector<uint32_t> fresh(cap, 0);
  const size_t mask = cap - 1;
  for (size_t r = 0; r < rows_; ++r) {
    const Value* row = log_.data() + r * arity_;
    size_t s = static_cast<size_t>(HashRow(row)) & mask;
    while (fresh[s] != 0) s = (s + 1) & mask;
    fresh[s] = static_cast<uint32_t>(r + 1);
  }
  slots_ = std::move(fresh);
  mask_ = mask;
}

}  // namespace storage
}  // namespace datalog
