#ifndef UNCHAINED_RA_STORAGE_ROW_SET_H_
#define UNCHAINED_RA_STORAGE_ROW_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ra/tuple.h"

namespace datalog {

class Relation;

namespace storage {

/// Exact membership set over fixed-arity flat rows, built for the columnar
/// delta engine's produced-checks (docs/storage.md): an open-addressing
/// table of row indexes into an append-order column log. Compared to
/// probing `Relation`'s tuple set, a lookup touches no per-tuple heap
/// nodes — the slot array and the flat log are the only memory — and an
/// insert appends `arity` values instead of allocating a `Tuple`. Rows are
/// never removed; the delta engine rebuilds per stratum.
class RowSet {
 public:
  /// Prepares the set for rows of `rel.arity()` (must be >= 1) and seeds
  /// it with the relation's current contents.
  void Init(const Relation& rel);

  bool initialized() const { return !slots_.empty(); }
  size_t rows() const { return rows_; }
  int arity() const { return static_cast<int>(arity_); }

  /// `row` points at `arity` values.
  bool Contains(const Value* row) const;

  /// Inserts the row if absent; returns true when it was new.
  bool Insert(const Value* row);

  /// Rows in insertion order, row-major — `rows() * arity` values.
  const std::vector<Value>& log() const { return log_; }

 private:
  uint64_t HashRow(const Value* row) const;
  void Grow();

  size_t arity_ = 1;
  size_t rows_ = 0;
  std::vector<Value> log_;
  /// Open addressing, linear probing: each slot is a row index + 1, with 0
  /// marking an empty slot. Sized to a power of two at most half full.
  std::vector<uint32_t> slots_;
  size_t mask_ = 0;
};

}  // namespace storage
}  // namespace datalog

#endif  // UNCHAINED_RA_STORAGE_ROW_SET_H_
