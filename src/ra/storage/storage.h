#ifndef UNCHAINED_RA_STORAGE_STORAGE_H_
#define UNCHAINED_RA_STORAGE_STORAGE_H_

#include <string_view>

namespace datalog {
namespace storage {

/// Which data-plane representation an evaluation uses (docs/storage.md).
///
///  * kHash     — the original representation: every probe goes through the
///                tuple-at-a-time hash indexes of IndexManager. The default;
///                every golden test and the byte-identical parallel
///                determinism contract are pinned to it.
///  * kColumnar — sorted-run columnar views (ColumnStore) drive merge joins
///                on the semi-naive delta path, and unary predicates are
///                probed through compressed bitmap indexes. Results and the
///                deterministic EvalStats counters (rounds, facts,
///                instantiations, per-rule) are identical to kHash — oracle
///                pair #8 (hash-vs-columnar) sweeps exactly that claim —
///                but index-maintenance counters and journal insertion
///                order differ.
///
/// The backend is chosen per evaluation through EvalOptions::storage
/// (CLI: --storage=hash|columnar); engines that have no columnar path
/// simply ignore the option.
enum class StorageBackend {
  kHash,
  kColumnar,
};

/// Stable external name ("hash" / "columnar"), used by CLI flags, bench
/// row labels and repro files.
inline const char* StorageBackendName(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kHash:
      return "hash";
    case StorageBackend::kColumnar:
      return "columnar";
  }
  return "unknown";
}

/// Inverse of StorageBackendName; returns false on an unknown name.
inline bool StorageBackendFromName(std::string_view name,
                                   StorageBackend* out) {
  if (name == "hash") {
    *out = StorageBackend::kHash;
    return true;
  }
  if (name == "columnar") {
    *out = StorageBackend::kColumnar;
    return true;
  }
  return false;
}

}  // namespace storage
}  // namespace datalog

#endif  // UNCHAINED_RA_STORAGE_STORAGE_H_
