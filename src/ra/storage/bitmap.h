#ifndef UNCHAINED_RA_STORAGE_BITMAP_H_
#define UNCHAINED_RA_STORAGE_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "base/symbols.h"

namespace datalog {
namespace storage {

/// A compressed set of interned domain values, in the roaring-bitmap
/// style: the 32-bit value space is chunked by its high 16 bits, and each
/// chunk holds its low 16 bits either as a sorted array (sparse) or as a
/// 64 Ki bitset (dense). A chunk is promoted from array to bitset when it
/// exceeds kArrayMax entries — past that point the 8 KiB bitset is both
/// smaller and O(1) to probe. Chunks never demote: `Remove` clears the
/// bit (or array entry) in place but keeps the dense representation —
/// churny workloads would otherwise thrash across the promotion
/// threshold, and an epoch-level rebuild already resets shape.
///
/// This is the unary-predicate index of the columnar backend
/// (docs/storage.md): membership probes and semijoin filters over an
/// arity-1 relation hit this instead of a hash bucket.
class ValueBitmap {
 public:
  /// Array chunks exceeding this many entries become bitsets. 4096
  /// 16-bit entries = 8 KiB, the size of a full bitset — the classic
  /// break-even point.
  static constexpr size_t kArrayMax = 4096;

  ValueBitmap() = default;

  /// Inserts `v` (must be a non-negative interned value); returns true if
  /// it was not already present.
  bool Add(Value v);

  /// Removes `v`; returns true if it was present. Dense chunks stay
  /// dense (see the class comment); empty chunks are retained — they cost
  /// a few bytes and vanish on the next Clear.
  bool Remove(Value v);

  bool Contains(Value v) const;

  /// Number of distinct values in the set.
  size_t cardinality() const { return cardinality_; }
  bool empty() const { return cardinality_ == 0; }

  void Clear() {
    chunks_.clear();
    cardinality_ = 0;
  }

  /// Invokes `fn` for every value in ascending order.
  void ForEach(const std::function<void(Value)>& fn) const;

  /// Chunks currently stored as dense bitsets (introspection for tests
  /// and the storage counters).
  size_t dense_chunks() const;

 private:
  struct Chunk {
    uint16_t key = 0;  // high 16 bits of the values in this chunk
    /// Sparse form: sorted low-16-bit entries. Empty once promoted.
    std::vector<uint16_t> array;
    /// Dense form: 1024 words covering the 64 Ki low values; empty until
    /// the chunk is promoted.
    std::vector<uint64_t> bits;

    bool dense() const { return !bits.empty(); }
  };

  /// The chunk for `key`, created (sparse, empty) if absent. Chunks are
  /// kept sorted by key so ForEach streams values in ascending order.
  Chunk* FindOrCreate(uint16_t key);
  const Chunk* Find(uint16_t key) const;

  std::vector<Chunk> chunks_;
  size_t cardinality_ = 0;
};

}  // namespace storage
}  // namespace datalog

#endif  // UNCHAINED_RA_STORAGE_BITMAP_H_
