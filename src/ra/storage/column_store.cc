#include "ra/storage/column_store.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace datalog {
namespace storage {

int SortedView::CompareRows(const ColumnRun& a, size_t ra, const ColumnRun& b,
                            size_t rb) const {
  for (int col : order_) {
    const Value va = a.cols[static_cast<size_t>(col)][ra];
    const Value vb = b.cols[static_cast<size_t>(col)][rb];
    if (va != vb) return va < vb ? -1 : 1;
  }
  return 0;
}

int SortedView::CompareRowToFlat(const ColumnRun& a, size_t ra,
                                 const Value* row) const {
  for (int col : order_) {
    const Value va = a.cols[static_cast<size_t>(col)][ra];
    const Value vb = row[col];
    if (va != vb) return va < vb ? -1 : 1;
  }
  return 0;
}

ColumnRun SortedView::BuildRun(const std::vector<const Tuple*>& tuples) const {
  ColumnRun run;
  run.rows = tuples.size();
  run.cols.resize(static_cast<size_t>(arity_));
  if (tuples.empty()) return run;

  std::vector<size_t> perm(tuples.size());
  std::iota(perm.begin(), perm.end(), size_t{0});
  std::sort(perm.begin(), perm.end(), [&](size_t x, size_t y) {
    const Tuple& tx = *tuples[x];
    const Tuple& ty = *tuples[y];
    for (int col : order_) {
      const Value vx = tx[static_cast<size_t>(col)];
      const Value vy = ty[static_cast<size_t>(col)];
      if (vx != vy) return vx < vy;
    }
    return false;
  });

  for (size_t c = 0; c < static_cast<size_t>(arity_); ++c) {
    std::vector<Value>& col = run.cols[c];
    col.reserve(tuples.size());
    for (size_t r : perm) col.push_back((*tuples[r])[c]);
  }
  return run;
}

void SortedView::Compact() {
  if (runs_.size() <= 1) return;
  ColumnRun merged;
  merged.rows = total_rows_;
  merged.cols.resize(static_cast<size_t>(arity_));
  for (auto& col : merged.cols) col.reserve(total_rows_);
  ForEachRowSorted([&](const ColumnRun& run, size_t row) {
    for (size_t c = 0; c < static_cast<size_t>(arity_); ++c) {
      merged.cols[c].push_back(run.cols[c][row]);
    }
  });
  runs_.clear();
  runs_.push_back(std::move(merged));
}

void SortedView::FindRanges(const Value* key, std::vector<Range>* out) const {
  const size_t key_width = key_cols_.size();
  for (const ColumnRun& run : runs_) {
    // Binary-search the first and last row matching the key prefix.
    size_t lo = 0, hi = run.rows;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      bool less = false;
      for (size_t i = 0; i < key_width; ++i) {
        const Value v = run.cols[static_cast<size_t>(key_cols_[i])][mid];
        if (v != key[i]) {
          less = v < key[i];
          break;
        }
      }
      if (less) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const size_t begin = lo;
    hi = run.rows;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      bool greater = false;
      for (size_t i = 0; i < key_width; ++i) {
        const Value v = run.cols[static_cast<size_t>(key_cols_[i])][mid];
        if (v != key[i]) {
          greater = v > key[i];
          break;
        }
      }
      if (greater) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (lo > begin) out->push_back(Range{&run, begin, lo});
  }
}

bool SortedView::RemoveRow(const Value* row) {
  for (auto rit = runs_.begin(); rit != runs_.end(); ++rit) {
    ColumnRun& run = *rit;
    size_t lo = 0, hi = run.rows;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (CompareRowToFlat(run, mid, row) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo >= run.rows || CompareRowToFlat(run, lo, row) != 0) continue;
    for (std::vector<Value>& col : run.cols) {
      col.erase(col.begin() + static_cast<std::ptrdiff_t>(lo));
    }
    --run.rows;
    --total_rows_;
    if (run.rows == 0) runs_.erase(rit);
    return true;
  }
  return false;
}

bool SortedView::ContainsRow(const Value* row) const {
  for (const ColumnRun& run : runs_) {
    size_t lo = 0, hi = run.rows;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      const int cmp = CompareRowToFlat(run, mid, row);
      if (cmp == 0) return true;
      if (cmp < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
  }
  return false;
}

const SortedView& ColumnStore::View(const Instance& db, PredId pred,
                                    const std::vector<int>& key_cols) {
  const Relation& rel = db.Rel(pred);
  auto [it, created] = views_.try_emplace({pred, key_cols});
  SortedView& view = it->second;
  if (created) {
    view.arity_ = rel.arity();
    view.key_cols_ = key_cols;
    view.order_ = key_cols;
    for (int c = 0; c < rel.arity(); ++c) {
      if (std::find(key_cols.begin(), key_cols.end(), c) == key_cols.end()) {
        view.order_.push_back(c);
      }
    }
  }
  assert(view.arity_ == rel.arity());

  if (created || view.epoch_ != rel.epoch()) {
    // Fresh view or history-losing mutation: rebuild from the relation.
    if (created) {
      ++counters_.builds;
    } else {
      ++counters_.rebuilds;
    }
    view.runs_.clear();
    std::vector<const Tuple*> tuples;
    tuples.reserve(rel.size());
    for (const Tuple& t : rel) tuples.push_back(&t);
    if (!tuples.empty()) view.runs_.push_back(view.BuildRun(tuples));
    view.total_rows_ = rel.size();
    view.epoch_ = rel.epoch();
    view.journal_pos_ = rel.journal().size();
    view.erase_pos_ = rel.erase_journal().size();
    return view;
  }

  const auto& journal = rel.journal();
  const auto& erases = rel.erase_journal();
  if (view.journal_pos_ < journal.size() ||
      view.erase_pos_ < erases.size()) {
    // Replay the journal tails in event order: pending inserts flush as
    // one sorted run at each erase boundary, so an erase of a
    // just-inserted row finds it, and a removed-then-reinserted row ends
    // present.
    size_t ins = view.journal_pos_;
    auto flush_up_to = [&](size_t limit) {
      if (ins >= limit) return;
      std::vector<const Tuple*> tuples(
          journal.begin() + static_cast<std::ptrdiff_t>(ins),
          journal.begin() + static_cast<std::ptrdiff_t>(limit));
      view.runs_.push_back(view.BuildRun(tuples));
      view.total_rows_ += tuples.size();
      ++counters_.run_appends;
      counters_.rows_appended += static_cast<int64_t>(tuples.size());
      ins = limit;
    };
    for (size_t e = view.erase_pos_; e < erases.size(); ++e) {
      const Relation::EraseEvent& ev = erases[e];
      flush_up_to(std::min(std::max(ev.ins_pos, ins), journal.size()));
      if (view.RemoveRow(ev.tuple->data())) ++counters_.rows_removed;
    }
    flush_up_to(journal.size());
    view.journal_pos_ = journal.size();
    view.erase_pos_ = erases.size();
    if (view.runs_.size() > SortedView::kMaxRuns) {
      view.Compact();
      ++counters_.compactions;
    }
  } else {
    ++counters_.hits;
  }
  return view;
}

}  // namespace storage
}  // namespace datalog
