#include "ra/storage/column_store.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace datalog {
namespace storage {

int SortedView::CompareRows(const ColumnRun& a, size_t ra, const ColumnRun& b,
                            size_t rb) const {
  for (int col : order_) {
    const Value va = a.cols[static_cast<size_t>(col)][ra];
    const Value vb = b.cols[static_cast<size_t>(col)][rb];
    if (va != vb) return va < vb ? -1 : 1;
  }
  return 0;
}

int SortedView::CompareRowToFlat(const ColumnRun& a, size_t ra,
                                 const Value* row) const {
  for (int col : order_) {
    const Value va = a.cols[static_cast<size_t>(col)][ra];
    const Value vb = row[col];
    if (va != vb) return va < vb ? -1 : 1;
  }
  return 0;
}

ColumnRun SortedView::BuildRun(const std::vector<const Tuple*>& tuples) const {
  ColumnRun run;
  run.rows = tuples.size();
  run.cols.resize(static_cast<size_t>(arity_));
  if (tuples.empty()) return run;

  std::vector<size_t> perm(tuples.size());
  std::iota(perm.begin(), perm.end(), size_t{0});
  std::sort(perm.begin(), perm.end(), [&](size_t x, size_t y) {
    const Tuple& tx = *tuples[x];
    const Tuple& ty = *tuples[y];
    for (int col : order_) {
      const Value vx = tx[static_cast<size_t>(col)];
      const Value vy = ty[static_cast<size_t>(col)];
      if (vx != vy) return vx < vy;
    }
    return false;
  });

  for (size_t c = 0; c < static_cast<size_t>(arity_); ++c) {
    std::vector<Value>& col = run.cols[c];
    col.reserve(tuples.size());
    for (size_t r : perm) col.push_back((*tuples[r])[c]);
  }
  return run;
}

void SortedView::Compact() {
  if (runs_.size() <= 1) return;
  ColumnRun merged;
  merged.rows = total_rows_;
  merged.cols.resize(static_cast<size_t>(arity_));
  for (auto& col : merged.cols) col.reserve(total_rows_);
  ForEachRowSorted([&](const ColumnRun& run, size_t row) {
    for (size_t c = 0; c < static_cast<size_t>(arity_); ++c) {
      merged.cols[c].push_back(run.cols[c][row]);
    }
  });
  runs_.clear();
  runs_.push_back(std::move(merged));
}

void SortedView::FindRanges(const Value* key, std::vector<Range>* out) const {
  const size_t key_width = key_cols_.size();
  for (const ColumnRun& run : runs_) {
    // Binary-search the first and last row matching the key prefix.
    size_t lo = 0, hi = run.rows;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      bool less = false;
      for (size_t i = 0; i < key_width; ++i) {
        const Value v = run.cols[static_cast<size_t>(key_cols_[i])][mid];
        if (v != key[i]) {
          less = v < key[i];
          break;
        }
      }
      if (less) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const size_t begin = lo;
    hi = run.rows;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      bool greater = false;
      for (size_t i = 0; i < key_width; ++i) {
        const Value v = run.cols[static_cast<size_t>(key_cols_[i])][mid];
        if (v != key[i]) {
          greater = v > key[i];
          break;
        }
      }
      if (greater) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (lo > begin) out->push_back(Range{&run, begin, lo});
  }
}

bool SortedView::ContainsRow(const Value* row) const {
  for (const ColumnRun& run : runs_) {
    size_t lo = 0, hi = run.rows;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      const int cmp = CompareRowToFlat(run, mid, row);
      if (cmp == 0) return true;
      if (cmp < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
  }
  return false;
}

const SortedView& ColumnStore::View(const Instance& db, PredId pred,
                                    const std::vector<int>& key_cols) {
  const Relation& rel = db.Rel(pred);
  auto [it, created] = views_.try_emplace({pred, key_cols});
  SortedView& view = it->second;
  if (created) {
    view.arity_ = rel.arity();
    view.key_cols_ = key_cols;
    view.order_ = key_cols;
    for (int c = 0; c < rel.arity(); ++c) {
      if (std::find(key_cols.begin(), key_cols.end(), c) == key_cols.end()) {
        view.order_.push_back(c);
      }
    }
  }
  assert(view.arity_ == rel.arity());

  if (created || view.epoch_ != rel.epoch()) {
    // Fresh view or non-monotone mutation: rebuild from the full relation.
    if (created) {
      ++counters_.builds;
    } else {
      ++counters_.rebuilds;
    }
    view.runs_.clear();
    std::vector<const Tuple*> tuples;
    tuples.reserve(rel.size());
    for (const Tuple& t : rel) tuples.push_back(&t);
    if (!tuples.empty()) view.runs_.push_back(view.BuildRun(tuples));
    view.total_rows_ = rel.size();
    view.epoch_ = rel.epoch();
    view.journal_pos_ = rel.journal().size();
    return view;
  }

  const auto& journal = rel.journal();
  if (view.journal_pos_ < journal.size()) {
    // Monotone growth: sort the journal tail into one new run.
    std::vector<const Tuple*> tuples;
    tuples.reserve(journal.size() - view.journal_pos_);
    for (size_t i = view.journal_pos_; i < journal.size(); ++i) {
      tuples.push_back(journal[i]);
    }
    view.runs_.push_back(view.BuildRun(tuples));
    view.total_rows_ += tuples.size();
    view.journal_pos_ = journal.size();
    ++counters_.run_appends;
    counters_.rows_appended += static_cast<int64_t>(tuples.size());
    if (view.runs_.size() > SortedView::kMaxRuns) {
      view.Compact();
      ++counters_.compactions;
    }
  } else {
    ++counters_.hits;
  }
  return view;
}

}  // namespace storage
}  // namespace datalog
