#include "ra/storage/bitmap.h"

#include <algorithm>
#include <cassert>

namespace datalog {
namespace storage {

namespace {

constexpr uint32_t kLowMask = 0xffffu;

uint16_t HighBits(Value v) {
  return static_cast<uint16_t>(static_cast<uint32_t>(v) >> 16);
}

uint16_t LowBits(Value v) {
  return static_cast<uint16_t>(static_cast<uint32_t>(v) & kLowMask);
}

}  // namespace

ValueBitmap::Chunk* ValueBitmap::FindOrCreate(uint16_t key) {
  auto it = std::lower_bound(
      chunks_.begin(), chunks_.end(), key,
      [](const Chunk& c, uint16_t k) { return c.key < k; });
  if (it != chunks_.end() && it->key == key) return &*it;
  it = chunks_.insert(it, Chunk{});
  it->key = key;
  return &*it;
}

const ValueBitmap::Chunk* ValueBitmap::Find(uint16_t key) const {
  auto it = std::lower_bound(
      chunks_.begin(), chunks_.end(), key,
      [](const Chunk& c, uint16_t k) { return c.key < k; });
  if (it != chunks_.end() && it->key == key) return &*it;
  return nullptr;
}

bool ValueBitmap::Add(Value v) {
  assert(v >= 0 && "bitmaps index the interned (non-negative) domain");
  Chunk* chunk = FindOrCreate(HighBits(v));
  const uint16_t low = LowBits(v);
  if (chunk->dense()) {
    uint64_t& word = chunk->bits[low >> 6];
    const uint64_t bit = uint64_t{1} << (low & 63);
    if (word & bit) return false;
    word |= bit;
    ++cardinality_;
    return true;
  }
  auto it = std::lower_bound(chunk->array.begin(), chunk->array.end(), low);
  if (it != chunk->array.end() && *it == low) return false;
  chunk->array.insert(it, low);
  ++cardinality_;
  if (chunk->array.size() > kArrayMax) {
    // Promote: spill the sorted array into a bitset and drop it.
    chunk->bits.assign(1024, 0);
    for (uint16_t entry : chunk->array) {
      chunk->bits[entry >> 6] |= uint64_t{1} << (entry & 63);
    }
    chunk->array.clear();
    chunk->array.shrink_to_fit();
  }
  return true;
}

bool ValueBitmap::Remove(Value v) {
  if (v < 0) return false;
  // Unlike Add, never materialize a chunk just to find the value absent.
  const uint16_t high = HighBits(v);
  auto cit = std::lower_bound(
      chunks_.begin(), chunks_.end(), high,
      [](const Chunk& c, uint16_t k) { return c.key < k; });
  if (cit == chunks_.end() || cit->key != high) return false;
  Chunk* chunk = &*cit;
  const uint16_t low = LowBits(v);
  if (chunk->dense()) {
    uint64_t& word = chunk->bits[low >> 6];
    const uint64_t bit = uint64_t{1} << (low & 63);
    if ((word & bit) == 0) return false;
    word &= ~bit;
    --cardinality_;
    return true;
  }
  auto it = std::lower_bound(chunk->array.begin(), chunk->array.end(), low);
  if (it == chunk->array.end() || *it != low) return false;
  chunk->array.erase(it);
  --cardinality_;
  return true;
}

bool ValueBitmap::Contains(Value v) const {
  if (v < 0) return false;
  const Chunk* chunk = Find(HighBits(v));
  if (chunk == nullptr) return false;
  const uint16_t low = LowBits(v);
  if (chunk->dense()) {
    return (chunk->bits[low >> 6] >> (low & 63)) & 1;
  }
  return std::binary_search(chunk->array.begin(), chunk->array.end(), low);
}

void ValueBitmap::ForEach(const std::function<void(Value)>& fn) const {
  for (const Chunk& chunk : chunks_) {
    const uint32_t high = static_cast<uint32_t>(chunk.key) << 16;
    if (chunk.dense()) {
      for (size_t w = 0; w < chunk.bits.size(); ++w) {
        uint64_t word = chunk.bits[w];
        while (word != 0) {
          const unsigned bit =
              static_cast<unsigned>(__builtin_ctzll(word));
          fn(static_cast<Value>(high | (static_cast<uint32_t>(w) << 6) |
                                bit));
          word &= word - 1;
        }
      }
    } else {
      for (uint16_t low : chunk.array) {
        fn(static_cast<Value>(high | low));
      }
    }
  }
}

size_t ValueBitmap::dense_chunks() const {
  size_t n = 0;
  for (const Chunk& chunk : chunks_) {
    if (chunk.dense()) ++n;
  }
  return n;
}

}  // namespace storage
}  // namespace datalog
