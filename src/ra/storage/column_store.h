#ifndef UNCHAINED_RA_STORAGE_COLUMN_STORE_H_
#define UNCHAINED_RA_STORAGE_COLUMN_STORE_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "ra/instance.h"
#include "ra/relation.h"
#include "ra/tuple.h"

namespace datalog {
namespace storage {

/// One sorted run: a batch of rows in columnar layout (`cols[c][r]` is
/// column c of row r, columns in the relation's declared order), sorted by
/// the owning view's comparison order. Runs are immutable once built;
/// growth happens by appending new runs and periodically merge-compacting
/// them (the log-structured-merge idea applied to relation storage).
struct ColumnRun {
  size_t rows = 0;
  std::vector<std::vector<Value>> cols;
};

/// A columnar, sorted view of one relation, ordered so a chosen set of
/// "key" columns is the comparison prefix: rows are sorted
/// lexicographically by (key_cols..., remaining columns ascending). All
/// rows equal on the key columns therefore form one contiguous range per
/// run, which is what the merge-join delta path binary-searches.
///
/// A view is maintained incrementally against its relation exactly like an
/// IndexManager index: it remembers the (epoch, insert/erase journal
/// positions) it has consumed; monotone growth appends the journal tail
/// as new sorted runs, erases splice the row out of its containing run in
/// event order, and a history-losing mutation (epoch change) rebuilds
/// from scratch. When the run count passes kMaxRuns, all runs are merged
/// into one (merge-compaction), so probes touch a bounded number of runs.
class SortedView {
 public:
  /// A contiguous row range [begin, end) of one run.
  struct Range {
    const ColumnRun* run;
    size_t begin;
    size_t end;
  };

  /// Runs are merged into one when an append would leave more than this
  /// many. Probes therefore binary-search at most kMaxRuns + 1 runs.
  static constexpr size_t kMaxRuns = 8;

  int arity() const { return arity_; }
  const std::vector<int>& key_cols() const { return key_cols_; }
  size_t rows() const { return total_rows_; }
  const std::vector<ColumnRun>& runs() const { return runs_; }

  /// Appends to `out` every row range whose key columns equal
  /// `key[0 .. key_cols().size())` (key[i] is the value bound to
  /// key_cols()[i]). Ranges come out in run order; rows within a range are
  /// sorted by the remaining columns.
  void FindRanges(const Value* key, std::vector<Range>* out) const;

  /// Full-row membership: `row` has arity() values in declared column
  /// order.
  bool ContainsRow(const Value* row) const;

  /// Invokes `fn(run, row_index)` for every row in comparison order
  /// (merging runs on the fly) — the canonical iteration for equivalence
  /// tests.
  template <typename Fn>
  void ForEachRowSorted(Fn fn) const;

 private:
  friend class ColumnStore;

  /// Three-way comparison of run rows / flat rows by the view order.
  int CompareRows(const ColumnRun& a, size_t ra, const ColumnRun& b,
                  size_t rb) const;
  int CompareRowToFlat(const ColumnRun& a, size_t ra, const Value* row) const;

  /// Builds one sorted run from `tuples` (flattened pointers).
  ColumnRun BuildRun(const std::vector<const Tuple*>& tuples) const;
  /// Replaces all runs with their merge (no-op for 0/1 runs).
  void Compact();
  /// Splices `row` out of its containing run (binary search per run);
  /// returns true if found. An emptied run is dropped.
  bool RemoveRow(const Value* row);

  int arity_ = 0;
  std::vector<int> key_cols_;
  /// Full comparison order: key_cols_ first, then the remaining columns
  /// ascending.
  std::vector<int> order_;
  std::vector<ColumnRun> runs_;
  size_t total_rows_ = 0;
  uint64_t epoch_ = 0;
  size_t journal_pos_ = 0;
  size_t erase_pos_ = 0;
};

/// The per-evaluation manager of columnar views — the columnar half of the
/// pluggable storage layer (docs/storage.md). Owned by EvalContext next to
/// IndexManager; views are created on demand per (predicate, key columns)
/// and kept in sync with the evaluation's relations through the
/// epoch/journal contract. Single-threaded by design: the columnar
/// merge-join path runs on the evaluating thread (parallel rounds keep
/// using the frozen hash indexes).
class ColumnStore {
 public:
  /// Maintenance counters, folded into EvalStats as storage_* by
  /// EvalContext::Finalize and published as storage.* metrics.
  struct Counters {
    /// First-time view builds of a (pred, key_cols) view.
    int64_t builds = 0;
    /// Full rebuilds forced by an epoch change.
    int64_t rebuilds = 0;
    /// Journal tails appended as new sorted runs.
    int64_t run_appends = 0;
    /// Rows appended across those runs.
    int64_t rows_appended = 0;
    /// Rows spliced out of runs via relation erase journals.
    int64_t rows_removed = 0;
    /// Merge-compactions (runs folded into one).
    int64_t compactions = 0;
    /// View() calls served by an already up-to-date view.
    int64_t hits = 0;
  };

  ColumnStore() = default;
  ColumnStore(const ColumnStore&) = delete;
  ColumnStore& operator=(const ColumnStore&) = delete;

  /// The sorted view of `db.Rel(pred)` keyed on `key_cols` (which may be
  /// empty: plain lexicographic order), brought up to date first. The
  /// reference — and any Range taken from it — is invalidated by the next
  /// View() call that appends or compacts, so callers finish their probes
  /// against one view before refreshing another of the same predicate.
  const SortedView& View(const Instance& db, PredId pred,
                         const std::vector<int>& key_cols);

  /// Drops every view (tests; evaluation contexts let the store die with
  /// them).
  void Clear() { views_.clear(); }

  const Counters& counters() const { return counters_; }

 private:
  std::map<std::pair<PredId, std::vector<int>>, SortedView> views_;
  Counters counters_;
};

template <typename Fn>
void SortedView::ForEachRowSorted(Fn fn) const {
  std::vector<size_t> cursor(runs_.size(), 0);
  for (size_t emitted = 0; emitted < total_rows_; ++emitted) {
    size_t best = runs_.size();
    for (size_t i = 0; i < runs_.size(); ++i) {
      if (cursor[i] >= runs_[i].rows) continue;
      if (best == runs_.size() ||
          CompareRows(runs_[i], cursor[i], runs_[best], cursor[best]) < 0) {
        best = i;
      }
    }
    fn(runs_[best], cursor[best]);
    ++cursor[best];
  }
}

}  // namespace storage
}  // namespace datalog

#endif  // UNCHAINED_RA_STORAGE_COLUMN_STORE_H_
