#include "ra/expr.h"

#include <cassert>
#include <unordered_map>

namespace datalog {
namespace ra {
namespace {

class ScanExpr final : public RaExpr {
 public:
  ScanExpr(PredId p, int arity) : RaExpr(arity), pred_(p) {}
  Relation Eval(const Instance& db) const override { return db.Rel(pred_); }

 private:
  PredId pred_;
};

class ConstExpr final : public RaExpr {
 public:
  explicit ConstExpr(Relation rel) : RaExpr(rel.arity()), rel_(std::move(rel)) {}
  Relation Eval(const Instance&) const override { return rel_; }

 private:
  Relation rel_;
};

class ProjectExpr final : public RaExpr {
 public:
  ProjectExpr(RaExprPtr child, std::vector<int> cols)
      : RaExpr(static_cast<int>(cols.size())),
        child_(std::move(child)),
        cols_(std::move(cols)) {
#ifndef NDEBUG
    for (int c : cols_) assert(c >= 0 && c < child_->arity());
#endif
  }

  Relation Eval(const Instance& db) const override {
    Relation in = child_->Eval(db);
    Relation out(arity());
    Tuple t(cols_.size());
    for (const Tuple& row : in) {
      for (size_t i = 0; i < cols_.size(); ++i) {
      t[i] = row[static_cast<size_t>(cols_[i])];
    }
      out.Insert(t);
    }
    return out;
  }

 private:
  RaExprPtr child_;
  std::vector<int> cols_;
};

class SelectExpr final : public RaExpr {
 public:
  SelectExpr(RaExprPtr child, std::vector<SelCondition> conds)
      : RaExpr(child->arity()),
        child_(std::move(child)),
        conds_(std::move(conds)) {}

  Relation Eval(const Instance& db) const override {
    Relation in = child_->Eval(db);
    Relation out(arity());
    for (const Tuple& row : in) {
      if (Matches(row)) out.Insert(row);
    }
    return out;
  }

 private:
  bool Matches(const Tuple& row) const {
    for (const SelCondition& c : conds_) {
      Value l =
          c.lhs.is_column ? row[static_cast<size_t>(c.lhs.index)] : c.lhs.constant;
      Value r =
          c.rhs.is_column ? row[static_cast<size_t>(c.rhs.index)] : c.rhs.constant;
      if ((l == r) != c.equal) return false;
    }
    return true;
  }

  RaExprPtr child_;
  std::vector<SelCondition> conds_;
};

class ProductExpr final : public RaExpr {
 public:
  ProductExpr(RaExprPtr left, RaExprPtr right)
      : RaExpr(left->arity() + right->arity()),
        left_(std::move(left)),
        right_(std::move(right)) {}

  Relation Eval(const Instance& db) const override {
    Relation l = left_->Eval(db);
    Relation r = right_->Eval(db);
    Relation out(arity());
    for (const Tuple& lt : l) {
      for (const Tuple& rt : r) {
        Tuple t = lt;
        t.insert(t.end(), rt.begin(), rt.end());
        out.Insert(std::move(t));
      }
    }
    return out;
  }

 private:
  RaExprPtr left_;
  RaExprPtr right_;
};

class JoinExpr final : public RaExpr {
 public:
  JoinExpr(RaExprPtr left, RaExprPtr right,
           std::vector<std::pair<int, int>> eq_cols)
      : RaExpr(left->arity() + right->arity()),
        left_(std::move(left)),
        right_(std::move(right)),
        eq_cols_(std::move(eq_cols)) {}

  Relation Eval(const Instance& db) const override {
    Relation l = left_->Eval(db);
    Relation r = right_->Eval(db);
    Relation out(arity());
    // Hash the right input on its join key.
    std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> index;
    Tuple key(eq_cols_.size());
    for (const Tuple& rt : r) {
      for (size_t i = 0; i < eq_cols_.size(); ++i) {
        key[i] = rt[static_cast<size_t>(eq_cols_[i].second)];
      }
      index[key].push_back(&rt);
    }
    for (const Tuple& lt : l) {
      for (size_t i = 0; i < eq_cols_.size(); ++i) {
        key[i] = lt[static_cast<size_t>(eq_cols_[i].first)];
      }
      auto it = index.find(key);
      if (it == index.end()) continue;
      for (const Tuple* rt : it->second) {
        Tuple t = lt;
        t.insert(t.end(), rt->begin(), rt->end());
        out.Insert(std::move(t));
      }
    }
    return out;
  }

 private:
  RaExprPtr left_;
  RaExprPtr right_;
  std::vector<std::pair<int, int>> eq_cols_;
};

class UnionExpr final : public RaExpr {
 public:
  UnionExpr(RaExprPtr left, RaExprPtr right)
      : RaExpr(left->arity()), left_(std::move(left)), right_(std::move(right)) {
    assert(left_->arity() == right_->arity());
  }

  Relation Eval(const Instance& db) const override {
    Relation out = left_->Eval(db);
    out.UnionWith(right_->Eval(db));
    return out;
  }

 private:
  RaExprPtr left_;
  RaExprPtr right_;
};

class DiffExpr final : public RaExpr {
 public:
  DiffExpr(RaExprPtr left, RaExprPtr right)
      : RaExpr(left->arity()), left_(std::move(left)), right_(std::move(right)) {
    assert(left_->arity() == right_->arity());
  }

  Relation Eval(const Instance& db) const override {
    Relation l = left_->Eval(db);
    Relation r = right_->Eval(db);
    Relation out(arity());
    for (const Tuple& t : l) {
      if (!r.Contains(t)) out.Insert(t);
    }
    return out;
  }

 private:
  RaExprPtr left_;
  RaExprPtr right_;
};

class AdomExpr final : public RaExpr {
 public:
  AdomExpr(int k, std::vector<Value> extra)
      : RaExpr(k), extra_(std::move(extra)) {
    assert(k >= 0);
  }

  Relation Eval(const Instance& db) const override {
    std::set<Value> dom = db.ActiveDomain();
    dom.insert(extra_.begin(), extra_.end());
    std::vector<Value> values(dom.begin(), dom.end());
    Relation out(arity());
    Tuple t(static_cast<size_t>(arity()));
    FillFrom(values, 0, &t, &out);
    return out;
  }

 private:
  static void FillFrom(const std::vector<Value>& values, int pos, Tuple* t,
                       Relation* out) {
    if (pos == static_cast<int>(t->size())) {
      out->Insert(*t);
      return;
    }
    for (Value v : values) {
      (*t)[static_cast<size_t>(pos)] = v;
      FillFrom(values, pos + 1, t, out);
    }
  }

  std::vector<Value> extra_;
};

}  // namespace

RaExprPtr Scan(PredId p, int arity) {
  return std::make_shared<ScanExpr>(p, arity);
}
RaExprPtr ConstRel(Relation rel) {
  return std::make_shared<ConstExpr>(std::move(rel));
}
RaExprPtr Project(RaExprPtr child, std::vector<int> cols) {
  return std::make_shared<ProjectExpr>(std::move(child), std::move(cols));
}
RaExprPtr Select(RaExprPtr child, std::vector<SelCondition> conds) {
  return std::make_shared<SelectExpr>(std::move(child), std::move(conds));
}
RaExprPtr Product(RaExprPtr left, RaExprPtr right) {
  return std::make_shared<ProductExpr>(std::move(left), std::move(right));
}
RaExprPtr Join(RaExprPtr left, RaExprPtr right,
               std::vector<std::pair<int, int>> eq_cols) {
  return std::make_shared<JoinExpr>(std::move(left), std::move(right),
                                    std::move(eq_cols));
}
RaExprPtr Union(RaExprPtr left, RaExprPtr right) {
  return std::make_shared<UnionExpr>(std::move(left), std::move(right));
}
RaExprPtr Diff(RaExprPtr left, RaExprPtr right) {
  return std::make_shared<DiffExpr>(std::move(left), std::move(right));
}
RaExprPtr Adom(int k, std::vector<Value> extra) {
  return std::make_shared<AdomExpr>(k, std::move(extra));
}

}  // namespace ra
}  // namespace datalog
