#include "while/while_parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "fo/fo.h"

namespace datalog {
namespace {

/// Character-level scanner for statement syntax; comprehension bodies are
/// sliced out as substrings and handed to the FO parser.
class WhileParser {
 public:
  WhileParser(std::string_view source, Catalog* catalog, SymbolTable* symbols)
      : src_(source), catalog_(catalog), symbols_(symbols) {}

  Result<WhileProgram> Run() {
    WhileProgram program;
    Skip();
    while (!AtEnd()) {
      Result<WhileStmt> stmt = ParseStmt();
      if (!stmt.ok()) return stmt.status();
      program.stmts.push_back(std::move(stmt).value());
      Skip();
    }
    return program;
  }

 private:
  Result<WhileStmt> ParseStmt() {
    std::string word = ReadWord();
    if (word.empty()) return Error("expected a statement");
    if (word == "while") {
      Skip();
      std::string kind = ReadWord();
      if (kind == "change") {
        Result<std::vector<WhileStmt>> body = ParseBlock();
        if (!body.ok()) return body.status();
        return WhileChange(std::move(body).value());
      }
      if (kind == "nonempty" || kind == "empty") {
        Result<RaExprPtr> cond = ParseComprehension();
        if (!cond.ok()) return cond.status();
        Result<std::vector<WhileStmt>> body = ParseBlock();
        if (!body.ok()) return body.status();
        return kind == "nonempty"
                   ? WhileNonEmpty(std::move(cond).value(),
                                   std::move(body).value())
                   : WhileEmpty(std::move(cond).value(),
                                std::move(body).value());
      }
      return Error("expected 'change', 'nonempty' or 'empty' after 'while'");
    }
    // Assignment: <relation> (":=" | "+=") comprehension ";"
    Skip();
    bool cumulative;
    if (TryConsume("+=")) {
      cumulative = true;
    } else if (TryConsume(":=")) {
      cumulative = false;
    } else {
      return Error("expected ':=' or '+=' after relation name '" + word +
                   "'");
    }
    Result<RaExprPtr> rhs = ParseComprehension();
    if (!rhs.ok()) return rhs.status();
    Skip();
    if (!TryConsume(";")) return Error("expected ';' after assignment");
    Result<PredId> target = catalog_->Declare(word, (*rhs)->arity());
    if (!target.ok()) return target.status();
    return cumulative ? AssignCumulative(*target, std::move(rhs).value())
                      : Assign(*target, std::move(rhs).value());
  }

  Result<std::vector<WhileStmt>> ParseBlock() {
    Skip();
    if (!TryConsume("{")) return Error("expected '{'");
    std::vector<WhileStmt> body;
    Skip();
    while (!AtEnd() && Peek() != '}') {
      Result<WhileStmt> stmt = ParseStmt();
      if (!stmt.ok()) return stmt.status();
      body.push_back(std::move(stmt).value());
      Skip();
    }
    if (!TryConsume("}")) return Error("expected '}'");
    return body;
  }

  // "{" var ("," var)* "|" formula "}"  or  "{" "|" formula "}".
  Result<RaExprPtr> ParseComprehension() {
    Skip();
    if (!TryConsume("{")) return Error("expected '{' starting a comprehension");
    std::vector<std::string> free_vars;
    Skip();
    while (!AtEnd() && Peek() != '|') {
      std::string var = ReadWord();
      if (var.empty()) return Error("expected a variable or '|'");
      free_vars.push_back(var);
      Skip();
      if (Peek() == ',') {
        Advance();
        Skip();
      }
    }
    if (!TryConsume("|")) return Error("expected '|' in comprehension");
    // The formula runs to the matching '}' (FO syntax contains no braces).
    size_t start = pos_;
    while (!AtEnd() && Peek() != '}') Advance();
    if (!TryConsume("}")) return Error("unterminated comprehension");
    std::string_view formula = src_.substr(start, pos_ - 1 - start);
    Result<FoQuery> query =
        FoQuery::Parse(formula, free_vars, catalog_, symbols_);
    if (!query.ok()) return query.status();
    return query->AsRaExpr();
  }

  // -- character-level helpers --------------------------------------

  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek() const { return src_[pos_]; }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void Skip() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '%' || (c == '/' && pos_ + 1 < src_.size() &&
                              src_[pos_ + 1] == '/')) {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        return;
      }
    }
  }

  std::string ReadWord() {
    Skip();
    std::string word;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        word += Advance();
      } else {
        break;
      }
    }
    return word;
  }

  bool TryConsume(std::string_view token) {
    Skip();
    if (src_.substr(pos_, token.size()) != token) return false;
    for (size_t i = 0; i < token.size(); ++i) Advance();
    return true;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(std::to_string(line_) + ":" +
                              std::to_string(col_) + ": " + message);
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  Catalog* catalog_;
  SymbolTable* symbols_;
};

}  // namespace

Result<WhileProgram> ParseWhileProgram(std::string_view source,
                                       Catalog* catalog,
                                       SymbolTable* symbols) {
  return WhileParser(source, catalog, symbols).Run();
}

}  // namespace datalog
