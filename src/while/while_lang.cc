#include "while/while_lang.h"

#include <unordered_map>

namespace datalog {

WhileStmt Assign(PredId target, RaExprPtr expr) {
  WhileStmt s;
  s.kind = WhileStmt::Kind::kAssign;
  s.target = target;
  s.cumulative = false;
  s.expr = std::move(expr);
  return s;
}

WhileStmt AssignCumulative(PredId target, RaExprPtr expr) {
  WhileStmt s = Assign(target, std::move(expr));
  s.cumulative = true;
  return s;
}

WhileStmt WhileChange(std::vector<WhileStmt> body) {
  WhileStmt s;
  s.kind = WhileStmt::Kind::kWhileChange;
  s.body = std::move(body);
  return s;
}

WhileStmt WhileNonEmpty(RaExprPtr cond, std::vector<WhileStmt> body) {
  WhileStmt s;
  s.kind = WhileStmt::Kind::kWhileNonEmpty;
  s.cond = std::move(cond);
  s.body = std::move(body);
  return s;
}

WhileStmt WhileEmpty(RaExprPtr cond, std::vector<WhileStmt> body) {
  WhileStmt s = WhileNonEmpty(std::move(cond), std::move(body));
  s.kind = WhileStmt::Kind::kWhileEmpty;
  return s;
}

namespace {

bool AllCumulative(const std::vector<WhileStmt>& stmts) {
  for (const WhileStmt& s : stmts) {
    if (s.kind == WhileStmt::Kind::kAssign) {
      if (!s.cumulative) return false;
    } else if (!AllCumulative(s.body)) {
      return false;
    }
  }
  return true;
}

class WhileInterpreter {
 public:
  WhileInterpreter(const WhileOptions& options, Instance db)
      : options_(options), db_(std::move(db)) {}

  Status RunBlock(const std::vector<WhileStmt>& stmts) {
    for (const WhileStmt& s : stmts) {
      DATALOG_RETURN_IF_ERROR(RunStmt(s));
    }
    return Status::OK();
  }

  Instance&& TakeResult() { return std::move(db_); }

 private:
  Status RunStmt(const WhileStmt& s) {
    switch (s.kind) {
      case WhileStmt::Kind::kAssign: {
        Relation value = s.expr->Eval(db_);
        Relation* target = db_.MutableRel(s.target);
        if (s.cumulative) {
          target->UnionWith(value);
        } else {
          *target = std::move(value);
        }
        return Status::OK();
      }
      case WhileStmt::Kind::kWhileChange: {
        // Iterate until one pass leaves the instance unchanged. A pass that
        // returns to any *earlier* state (not the immediately preceding
        // one) can never converge: report non-termination.
        std::vector<Instance> history;
        std::unordered_map<uint64_t, std::vector<size_t>> seen;
        auto lookup_or_add = [&](const Instance& state) -> int {
          uint64_t h = state.Fingerprint();
          auto& bucket = seen[h];
          for (size_t idx : bucket) {
            if (history[idx] == state) return static_cast<int>(idx);
          }
          bucket.push_back(history.size());
          history.push_back(state);
          return -1;
        };
        if (options_.detect_cycles) lookup_or_add(db_);
        for (int64_t iter = 0;; ++iter) {
          if (iter >= options_.max_iterations) {
            return Status::BudgetExhausted(
                "while-change loop exceeded iteration budget");
          }
          Instance before = db_;
          DATALOG_RETURN_IF_ERROR(RunBlock(s.body));
          if (db_ == before) return Status::OK();
          if (options_.detect_cycles) {
            int prev = lookup_or_add(db_);
            if (prev >= 0) {
              return Status::NonTerminating(
                  "while-change loop revisited the state of iteration " +
                  std::to_string(prev) + " (cycle length " +
                  std::to_string(history.size() - prev) + ")");
            }
          }
        }
      }
      case WhileStmt::Kind::kWhileNonEmpty:
      case WhileStmt::Kind::kWhileEmpty: {
        bool want_nonempty = s.kind == WhileStmt::Kind::kWhileNonEmpty;
        for (int64_t iter = 0;; ++iter) {
          if (iter >= options_.max_iterations) {
            return Status::BudgetExhausted(
                "while loop exceeded iteration budget");
          }
          bool nonempty = !s.cond->Eval(db_).empty();
          if (nonempty != want_nonempty) return Status::OK();
          DATALOG_RETURN_IF_ERROR(RunBlock(s.body));
        }
      }
    }
    return Status::Internal("unknown while statement kind");
  }

  const WhileOptions& options_;
  Instance db_;
};

}  // namespace

bool IsFixpointProgram(const WhileProgram& program) {
  return AllCumulative(program.stmts);
}

Result<Instance> RunWhile(const WhileProgram& program, const Instance& input,
                          const WhileOptions& options) {
  WhileInterpreter interp(options, input);
  Status st = interp.RunBlock(program.stmts);
  if (!st.ok()) return st;
  return interp.TakeResult();
}

}  // namespace datalog
