#ifndef UNCHAINED_WHILE_WHILE_LANG_H_
#define UNCHAINED_WHILE_WHILE_LANG_H_

#include <vector>

#include "base/result.h"
#include "ra/expr.h"
#include "ra/instance.h"

namespace datalog {

/// One statement of the *while* language of Section 2: relation-variable
/// assignments over FO (relational algebra) expressions plus looping
/// constructs. The *fixpoint* language is the sublanguage whose
/// assignments are all cumulative (`R += E`), which guarantees
/// polynomial-time termination.
struct WhileStmt {
  enum class Kind {
    /// target := expr (destructive) or target += expr (cumulative).
    kAssign,
    /// while change do body — iterate while some relation changes.
    kWhileChange,
    /// while expr ≠ ∅ do body.
    kWhileNonEmpty,
    /// while expr = ∅ do body.
    kWhileEmpty,
  };

  Kind kind = Kind::kAssign;
  // kAssign:
  PredId target = -1;
  bool cumulative = false;
  RaExprPtr expr;
  // loops:
  RaExprPtr cond;
  std::vector<WhileStmt> body;
};

/// A while program over relation variables registered in a `Catalog`.
struct WhileProgram {
  std::vector<WhileStmt> stmts;
};

/// Builders.
WhileStmt Assign(PredId target, RaExprPtr expr);
WhileStmt AssignCumulative(PredId target, RaExprPtr expr);
WhileStmt WhileChange(std::vector<WhileStmt> body);
WhileStmt WhileNonEmpty(RaExprPtr cond, std::vector<WhileStmt> body);
WhileStmt WhileEmpty(RaExprPtr cond, std::vector<WhileStmt> body);

/// True iff every assignment in the program is cumulative — the program is
/// in the *fixpoint* sublanguage (terminates in polynomial time;
/// Section 2 and Theorem 4.2's other half).
bool IsFixpointProgram(const WhileProgram& program);

struct WhileOptions {
  /// Iteration budget per loop (while programs may diverge).
  int64_t max_iterations = 1'000'000;
  /// Detect a revisited state inside a loop and report kNonTerminating.
  bool detect_cycles = true;
};

/// Runs the program, mutating a copy of `input` statement by statement
/// (sequential semantics), and returns the final instance.
Result<Instance> RunWhile(const WhileProgram& program, const Instance& input,
                          const WhileOptions& options);

}  // namespace datalog

#endif  // UNCHAINED_WHILE_WHILE_LANG_H_
