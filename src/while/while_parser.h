#ifndef UNCHAINED_WHILE_WHILE_PARSER_H_
#define UNCHAINED_WHILE_WHILE_PARSER_H_

#include <string_view>

#include "base/result.h"
#include "while/while_lang.h"

namespace datalog {

/// Parses the textual form of the *while* / *fixpoint* languages
/// (Section 2), with FO comprehensions as assignment right-hand sides —
/// exactly how the paper writes them:
///
///   t += { X, Y | g(X, Y) };
///   while change {
///     t += { X, Y | exists Z (t(X, Z) & g(Z, Y)) };
///   }
///   ct := { X, Y | !t(X, Y) };                    % destructive: while only
///   while nonempty { X | frontier(X) } { ... }
///   while empty { X | done(X) } { ... }
///
/// `R += E` is the cumulative assignment of the fixpoint language; a
/// program whose assignments are all cumulative satisfies
/// `IsFixpointProgram`. Relation variables are declared in `catalog` on
/// first use with the comprehension's arity; formulas are parsed by the
/// FO layer (fo/fo.h) and evaluated under active-domain semantics.
/// `%` and `//` start line comments.
Result<WhileProgram> ParseWhileProgram(std::string_view source,
                                       Catalog* catalog,
                                       SymbolTable* symbols);

}  // namespace datalog

#endif  // UNCHAINED_WHILE_WHILE_PARSER_H_
