#include "dist/peers.h"

#include <algorithm>

#include "eval/grounder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace datalog {

namespace {

/// Registry handles for the distribution counters (one registration for
/// the process lifetime), folded in once per Run like the eval.* metrics.
struct DistMetrics {
  obs::CounterHandle sent{"dist.sent"};
  obs::CounterHandle delivered{"dist.delivered"};
  obs::CounterHandle dropped{"dist.dropped"};
  obs::CounterHandle duplicated{"dist.duplicated"};
  obs::CounterHandle reordered{"dist.reordered"};
  obs::CounterHandle delayed{"dist.delayed"};
  obs::CounterHandle retries{"dist.retries"};
  obs::CounterHandle redeliveries{"dist.redeliveries"};
  obs::CounterHandle acks{"dist.acks"};
  obs::CounterHandle expired{"dist.expired"};
  obs::CounterHandle crashes{"dist.crashes"};
  obs::CounterHandle restarts{"dist.restarts"};
  obs::CounterHandle checkpoints{"dist.checkpoints"};
  obs::CounterHandle checkpoint_bytes{"dist.checkpoint_bytes"};
};

void PublishDistMetrics(const DistStats& s) {
  if (!obs::MetricsRegistry::Get().enabled()) return;
  static DistMetrics m;
  m.sent.Add(s.transport.sent);
  m.delivered.Add(s.transport.delivered);
  m.dropped.Add(s.transport.dropped);
  m.duplicated.Add(s.transport.duplicated);
  m.reordered.Add(s.transport.reordered);
  m.delayed.Add(s.transport.delayed);
  m.retries.Add(s.transport.retries);
  m.redeliveries.Add(s.transport.redeliveries);
  m.acks.Add(s.transport.acks);
  m.expired.Add(s.transport.expired);
  m.crashes.Add(s.crashes);
  m.restarts.Add(s.restarts);
  m.checkpoints.Add(s.checkpoints);
  m.checkpoint_bytes.Add(s.checkpoint_bytes);
}

/// Validates a crash schedule against the system: peers in range, rounds
/// positive, and no peer crashing again before its previous restart.
Status ValidateCrashes(const CrashSchedule& crashes, int num_peers) {
  std::vector<CrashEvent> sorted = crashes.events;
  std::sort(sorted.begin(), sorted.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              return a.at_round != b.at_round ? a.at_round < b.at_round
                                              : a.peer < b.peer;
            });
  std::vector<int> up_again(num_peers, 0);
  for (const CrashEvent& ev : sorted) {
    if (ev.peer < 0 || ev.peer >= num_peers) {
      return Status::InvalidProgram("crash schedule names peer " +
                                    std::to_string(ev.peer) +
                                    " of a system with " +
                                    std::to_string(num_peers) + " peers");
    }
    if (ev.at_round < 1 || ev.down_rounds < 1) {
      return Status::InvalidProgram(
          "crash schedule rounds must be positive");
    }
    if (ev.at_round < up_again[ev.peer]) {
      return Status::InvalidProgram("crash schedule overlaps for peer " +
                                    std::to_string(ev.peer));
    }
    up_again[ev.peer] = ev.at_round + ev.down_rounds;
  }
  return Status::OK();
}

}  // namespace

PeerSystem::PeerSystem(Catalog* catalog, SymbolTable* symbols)
    : catalog_(catalog), symbols_(symbols) {}

Result<int> PeerSystem::AddPeer(std::string name, Program program,
                                Instance facts) {
  if (name.empty() || name.find('_') != std::string::npos) {
    // With '_' in a peer name the at_<peer>_<pred> convention is
    // ambiguous: peers "a" and "a_b" would both claim the head
    // `at_a_b_p`. Reject at registration, where the fix is obvious.
    return Status::InvalidProgram("peer name '" + name +
                                  "' must be non-empty and must not "
                                  "contain '_'");
  }
  for (const Peer& peer : peers_) {
    if (peer.name == name) {
      return Status::InvalidProgram("duplicate peer name '" + name + "'");
    }
  }
  for (const Rule& rule : program.rules) {
    for (const Literal& head : rule.heads) {
      if (head.kind != Literal::Kind::kRelational || head.negative) {
        return Status::Unsupported(
            "peer rules are inflationary Datalog¬ (single positive heads)");
      }
    }
    if (!rule.universal_vars.empty()) {
      return Status::Unsupported("peer rules cannot use ∀");
    }
  }
  peers_.push_back(Peer{std::move(name), std::move(program),
                        std::move(facts)});
  return static_cast<int>(peers_.size()) - 1;
}

Result<std::pair<int, PredId>> PeerSystem::ResolveHead(
    PredId head_pred) const {
  const std::string& name = catalog_->NameOf(head_pred);
  if (name.rfind("at_", 0) != 0) return std::make_pair(-1, head_pred);
  // at_<peer>_<pred>: peer names contain no '_' (enforced by AddPeer), so
  // at most one registered peer matches the prefix.
  for (int p = 0; p < num_peers(); ++p) {
    const std::string& peer_name = peers_[p].name;
    const std::string prefix = "at_" + peer_name + "_";
    if (name.rfind(prefix, 0) == 0) {
      std::string local = name.substr(prefix.size());
      if (local.empty()) {
        return Status::InvalidProgram("located head '" + name +
                                      "' names no predicate");
      }
      Result<PredId> local_pred =
          catalog_->Declare(local, catalog_->ArityOf(head_pred));
      if (!local_pred.ok()) return local_pred.status();
      return std::make_pair(p, *local_pred);
    }
  }
  return Status::InvalidProgram("located head '" + name +
                                "' references an unknown peer");
}

Result<int> PeerSystem::Run(const EvalOptions& options) {
  PeerRunOptions run_options;
  run_options.eval = options;
  return Run(run_options);
}

Result<int> PeerSystem::Run(const PeerRunOptions& run_options) {
  const EvalOptions& options = run_options.eval;
  messages_delivered_ = 0;
  dist_stats_ = DistStats{};

  // Pre-resolve every head and build matchers once.
  struct CompiledRule {
    int peer;
    const Rule* rule;
    int destination;  // -1 = local
    PredId local_pred;
  };
  std::vector<CompiledRule> compiled;
  std::vector<RuleMatcher> matchers;
  for (int p = 0; p < num_peers(); ++p) {
    for (const Rule& rule : peers_[p].program.rules) {
      Result<std::pair<int, PredId>> resolved =
          ResolveHead(rule.heads[0].atom.pred);
      if (!resolved.ok()) return resolved.status();
      compiled.push_back(
          CompiledRule{p, &rule, resolved->first, resolved->second});
    }
  }
  matchers.reserve(compiled.size());
  for (const CompiledRule& cr : compiled) matchers.emplace_back(cr.rule);

  static const CrashSchedule kNoCrashes;
  const CrashSchedule& crashes =
      run_options.crashes != nullptr ? *run_options.crashes : kNoCrashes;
  if (Status valid = ValidateCrashes(crashes, num_peers()); !valid.ok()) {
    return valid;
  }

  ReliableTransport reliable(
      catalog_, [this](int p) -> const Instance& { return peers_[p].db; });
  Transport* transport =
      run_options.transport != nullptr ? run_options.transport : &reliable;

  // One persistent evaluation context per peer: each peer's indexes and
  // active-domain cache live across every round of the run, refreshed
  // incrementally as deliveries grow its local instance. (Peers share
  // PredIds through the global catalog, so a single shared context would
  // thrash between the peers' unrelated relations.)
  std::vector<EvalContext> contexts(num_peers());
  // Deadline/cancellation gate for the global round loop. It evaluates
  // nothing itself — the per-peer contexts carry all counters — so it
  // never publishes metrics.
  EvalContext gate(options);
  gate.publish_metrics = false;

  // The transport hands arrivals back through this sink; local classes in
  // a member function may touch `peers_`.
  struct DbSink final : Transport::Sink {
    std::vector<Peer>* peers;
    explicit DbSink(std::vector<Peer>* p) : peers(p) {}
    bool Deliver(int dest, PredId pred, const Tuple& tuple) override {
      return (*peers)[dest].db.Insert(pred, tuple);
    }
    size_t DeliverAll(int dest, const Instance& outbox) override {
      return (*peers)[dest].db.UnionWith(outbox);
    }
  };
  DbSink sink(&peers_);

  // Crash/recovery bookkeeping. down_until[p] is the round at which the
  // peer restarts (0 = up); checkpoints hold the latest snapshot bytes.
  const bool simulate_crashes = !crashes.empty();
  std::vector<int> down_until(num_peers(), 0);
  std::vector<std::string> checkpoints(num_peers());
  auto log_event = [&](std::string line) {
    if (run_options.event_log != nullptr) {
      run_options.event_log->push_back(std::move(line));
    }
  };

  // All exits — quiescence, budget, deadline, cancellation — report the
  // counters accumulated so far through last_run_stats()/last_dist_stats()
  // and fold them into the metrics registry.
  auto finish = [&](int quiesced_rounds) {
    last_run_stats_ = EvalStats{};
    for (EvalContext& ctx : contexts) {
      ctx.Finalize();
      last_run_stats_.MergeFrom(ctx.stats);
    }
    last_run_stats_.rounds = quiesced_rounds;
    dist_stats_.transport = transport->stats();
    messages_delivered_ = dist_stats_.transport.delivered;
    PublishDistMetrics(dist_stats_);
  };

  OBS_SPAN("peers.run");
  int round = 0;   // global 1-based round clock (all executed rounds)
  int rounds = 0;  // rounds that delivered new facts — the return value
  while (true) {
    if (Status interrupted = gate.CheckInterrupt(); !interrupted.ok()) {
      finish(rounds);
      return interrupted;
    }
    if (round + 1 > options.max_rounds) {
      finish(rounds);
      return Status::BudgetExhausted("peer system exceeded round budget");
    }
    ++round;
    OBS_SPAN("peers.round", {{"round", round}});

    if (simulate_crashes) {
      // Restarts due this round: restore the latest checkpoint; the
      // transport already reset the peer's links when it went down, so
      // senders re-offer everything the restored instance is missing.
      for (int p = 0; p < num_peers(); ++p) {
        if (down_until[p] != round) continue;
        down_until[p] = 0;
        if (Status restored = peers_[p].db.RestoreSnapshot(checkpoints[p]);
            !restored.ok()) {
          finish(rounds);
          return restored;
        }
        transport->OnPeerRestart(p);
        ++dist_stats_.restarts;
        OBS_SPAN("dist.restart", {{"peer", p}, {"round", round}});
        log_event("round " + std::to_string(round) + ": " + peers_[p].name +
                  " restarted from checkpoint (" +
                  std::to_string(checkpoints[p].size()) + " bytes)");
      }
      // Periodic checkpoints of the peers that are up (round 1 is the
      // mandatory initial checkpoint).
      if (round == 1 || (run_options.checkpoint_every_rounds > 0 &&
                         (round - 1) % run_options.checkpoint_every_rounds ==
                             0)) {
        for (int p = 0; p < num_peers(); ++p) {
          if (down_until[p] != 0) continue;
          checkpoints[p] = peers_[p].db.SerializeSnapshot();
          ++dist_stats_.checkpoints;
          dist_stats_.checkpoint_bytes +=
              static_cast<int64_t>(checkpoints[p].size());
          OBS_SPAN("dist.checkpoint", {{"peer", p}, {"round", round}});
          log_event("round " + std::to_string(round) + ": checkpoint " +
                    peers_[p].name + " (" +
                    std::to_string(checkpoints[p].size()) + " bytes)");
        }
      }
      // Crashes due this round: the peer loses its in-flight traffic and
      // fires no rules until it restarts.
      for (const CrashEvent& ev : crashes.events) {
        if (ev.at_round != round) continue;
        down_until[ev.peer] = round + ev.down_rounds;
        transport->OnPeerDown(ev.peer);
        ++dist_stats_.crashes;
        OBS_SPAN("dist.crash", {{"peer", ev.peer}, {"round", round}});
        log_event("round " + std::to_string(round) + ": " +
                  peers_[ev.peer].name + " crashed for " +
                  std::to_string(ev.down_rounds) + " rounds");
      }
    }

    // One global round: every live peer fires all its rules against its
    // frozen local instance; derived facts go to the transport, which
    // applies whatever arrives this round at the end (asynchronous
    // delivery).
    for (size_t i = 0; i < compiled.size(); ++i) {
      const CompiledRule& cr = compiled[i];
      if (down_until[cr.peer] != 0) continue;  // crashed peers are silent
      const Peer& peer = peers_[cr.peer];
      EvalContext& ctx = contexts[cr.peer];
      DbView view{&peer.db, &peer.db};
      const std::vector<Value>& adom = ctx.Adom(peer.program, peer.db);
      const Atom& head = cr.rule->heads[0].atom;
      const int dest = cr.destination < 0 ? cr.peer : cr.destination;
      const bool remote = cr.destination >= 0;
      matchers[i].ForEachMatch(
          view, adom, &ctx.index, [&](const Valuation& val) -> bool {
            ++ctx.stats.instantiations;
            transport->Send(cr.peer, dest, remote, cr.local_pred,
                            InstantiateAtom(head, val));
            return true;
          });
    }

    const int64_t new_facts = transport->EndRound(round, &sink);
    bool any_down = false;
    for (int until : down_until) any_down = any_down || until != 0;
    if (new_facts > 0) {
      ++rounds;
    } else if (transport->Idle() && !any_down) {
      // Global quiescence: a silent round with nothing in flight and
      // every peer up. (A pending crash event beyond this round never
      // fires — the system already converged.)
      break;
    }
  }

  finish(rounds);
  return rounds;
}

}  // namespace datalog
