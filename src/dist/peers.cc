#include "dist/peers.h"

#include <map>

#include "eval/grounder.h"
#include "obs/trace.h"

namespace datalog {

PeerSystem::PeerSystem(Catalog* catalog, SymbolTable* symbols)
    : catalog_(catalog), symbols_(symbols) {}

Result<int> PeerSystem::AddPeer(std::string name, Program program,
                                Instance facts) {
  for (const Peer& peer : peers_) {
    if (peer.name == name) {
      return Status::InvalidProgram("duplicate peer name '" + name + "'");
    }
  }
  for (const Rule& rule : program.rules) {
    for (const Literal& head : rule.heads) {
      if (head.kind != Literal::Kind::kRelational || head.negative) {
        return Status::Unsupported(
            "peer rules are inflationary Datalog¬ (single positive heads)");
      }
    }
    if (!rule.universal_vars.empty()) {
      return Status::Unsupported("peer rules cannot use ∀");
    }
  }
  peers_.push_back(Peer{std::move(name), std::move(program),
                        std::move(facts)});
  return static_cast<int>(peers_.size()) - 1;
}

Result<std::pair<int, PredId>> PeerSystem::ResolveHead(
    PredId head_pred) const {
  const std::string& name = catalog_->NameOf(head_pred);
  if (name.rfind("at_", 0) != 0) return std::make_pair(-1, head_pred);
  // at_<peer>_<pred>: the peer name is the longest prefix matching a
  // registered peer (peer names may not contain '_' ambiguity by
  // construction: we scan all peers).
  for (int p = 0; p < num_peers(); ++p) {
    const std::string& peer_name = peers_[p].name;
    const std::string prefix = "at_" + peer_name + "_";
    if (name.rfind(prefix, 0) == 0) {
      std::string local = name.substr(prefix.size());
      if (local.empty()) {
        return Status::InvalidProgram("located head '" + name +
                                      "' names no predicate");
      }
      Result<PredId> local_pred =
          catalog_->Declare(local, catalog_->ArityOf(head_pred));
      if (!local_pred.ok()) return local_pred.status();
      return std::make_pair(p, *local_pred);
    }
  }
  return Status::InvalidProgram("located head '" + name +
                                "' references an unknown peer");
}

Result<int> PeerSystem::Run(const EvalOptions& options) {
  messages_delivered_ = 0;

  // Pre-resolve every head and build matchers once.
  struct CompiledRule {
    int peer;
    const Rule* rule;
    int destination;  // -1 = local
    PredId local_pred;
  };
  std::vector<CompiledRule> compiled;
  std::vector<RuleMatcher> matchers;
  for (int p = 0; p < num_peers(); ++p) {
    for (const Rule& rule : peers_[p].program.rules) {
      Result<std::pair<int, PredId>> resolved =
          ResolveHead(rule.heads[0].atom.pred);
      if (!resolved.ok()) return resolved.status();
      compiled.push_back(
          CompiledRule{p, &rule, resolved->first, resolved->second});
    }
  }
  matchers.reserve(compiled.size());
  for (const CompiledRule& cr : compiled) matchers.emplace_back(cr.rule);

  // One persistent evaluation context per peer: each peer's indexes and
  // active-domain cache live across every round of the run, refreshed
  // incrementally as deliveries grow its local instance. (Peers share
  // PredIds through the global catalog, so a single shared context would
  // thrash between the peers' unrelated relations.)
  std::vector<EvalContext> contexts(num_peers());

  OBS_SPAN("peers.run");
  int rounds = 0;
  while (true) {
    if (rounds + 1 > options.max_rounds) {
      // Budget-exhausted runs still report the counters accumulated so
      // far through last_run_stats() rather than leaving stale numbers.
      last_run_stats_ = EvalStats{};
      for (EvalContext& ctx : contexts) {
        ctx.Finalize();
        last_run_stats_.MergeFrom(ctx.stats);
      }
      last_run_stats_.rounds = rounds;
      return Status::BudgetExhausted("peer system exceeded round budget");
    }
    OBS_SPAN("peers.round", {{"round", rounds + 1}});
    // One global round: every peer fires all its rules against its frozen
    // local instance; derived facts are buffered per destination and
    // delivered at the end of the round (asynchronous delivery).
    std::map<int, Instance> outboxes;
    bool any_new = false;
    for (size_t i = 0; i < compiled.size(); ++i) {
      const CompiledRule& cr = compiled[i];
      const Peer& peer = peers_[cr.peer];
      EvalContext& ctx = contexts[cr.peer];
      DbView view{&peer.db, &peer.db};
      const std::vector<Value>& adom = ctx.Adom(peer.program, peer.db);
      const Atom& head = cr.rule->heads[0].atom;
      int dest = cr.destination < 0 ? cr.peer : cr.destination;
      auto [it, created] = outboxes.try_emplace(dest, Instance(catalog_));
      Instance& outbox = it->second;
      matchers[i].ForEachMatch(
          view, adom, &ctx.index, [&](const Valuation& val) -> bool {
            ++ctx.stats.instantiations;
            Tuple t = InstantiateAtom(head, val);
            if (!peers_[dest].db.Contains(cr.local_pred, t)) {
              bool fresh = outbox.Insert(cr.local_pred, std::move(t));
              if (fresh && cr.destination >= 0) ++messages_delivered_;
            }
            return true;
          });
    }
    for (auto& [dest, outbox] : outboxes) {
      if (peers_[dest].db.UnionWith(outbox) > 0) any_new = true;
    }
    if (!any_new) break;
    ++rounds;
  }

  last_run_stats_ = EvalStats{};
  for (EvalContext& ctx : contexts) {
    ctx.Finalize();
    last_run_stats_.MergeFrom(ctx.stats);
  }
  last_run_stats_.rounds = rounds;
  return rounds;
}

}  // namespace datalog
