#ifndef UNCHAINED_DIST_TRANSPORT_H_
#define UNCHAINED_DIST_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/result.h"
#include "base/rng.h"
#include "ra/instance.h"

namespace datalog {

// Message delivery for the peer system (dist/peers.h), factored out of the
// round loop so the same peer programs run over two network models:
//
//   * ReliableTransport — the synchronous default. Facts derived in round
//     r arrive at their destination at the end of round r, exactly the
//     semantics PeerSystem::Run always had.
//   * UnreliableTransport — a deterministic fault-injection network: a
//     seeded schedule drops, duplicates, reorders and delays individual
//     messages and severs scripted partitions. An at-least-once protocol
//     (per-link sequence numbers, cumulative acks, retry with exponential
//     backoff in rounds, receiver-side dedup) recovers delivery; the CALM
//     argument (docs/distribution.md) is that for the monotone peer
//     dialect the final instances are *identical* to the reliable run's.
//
// Everything is driven by the round clock — there are no threads and no
// wall-clock inside a transport — so a run is a pure function of
// (programs, facts, schedule, seed) and can be replayed bit-for-bit.

/// Scripted network partition: while active, messages crossing the cut
/// between `group` and the remaining peers are dropped (payloads and acks
/// alike). Rounds are 1-based, matching the peer system's global round
/// counter; the partition is active in rounds [from_round, until_round).
struct NetworkPartition {
  int from_round = 0;
  int until_round = 0;
  std::vector<int> group;

  bool Active(int round) const {
    return round >= from_round && round < until_round;
  }
  /// True if the (src, dest) link crosses the cut while active.
  bool Severs(int round, int src, int dest) const;
};

/// Per-message fault probabilities plus scripted partitions. All
/// randomness is drawn from the transport's single seeded Rng in a fixed
/// iteration order, so a schedule plus a seed fully determines every
/// drop/duplicate/delay decision.
struct FaultSchedule {
  /// Probability a transmission is lost (applied per attempt, so retries
  /// re-roll). Must be < 1 for convergence — see docs/distribution.md.
  double drop = 0.0;
  /// Probability a delivered transmission is duplicated in flight.
  double duplicate = 0.0;
  /// Probability an arriving message swaps behind a random earlier
  /// arrival of the same round (per-message, applied to the arrival
  /// batch).
  double reorder = 0.0;
  /// Probability a transmission is delayed by 1..max_delay_rounds rounds
  /// instead of arriving at the end of the current round.
  double delay = 0.0;
  int max_delay_rounds = 3;
  /// Retry burst length: after this many unacknowledged transmissions the
  /// packet's attempt counter resets (counted in TransportStats::expired)
  /// and the backoff restarts from one round. The sender never silently
  /// abandons a packet — at-least-once delivery over a fair-lossy link
  /// requires retrying until acknowledged, and a monotone sender would
  /// simply re-offer the fact anyway.
  int max_retries = 12;
  /// Cap on the exponential backoff between retries, in rounds.
  int max_backoff_rounds = 8;
  std::vector<NetworkPartition> partitions;
};

/// Kills `peer` at the start of global round `at_round` (1-based) for
/// `down_rounds` rounds. A down peer fires no rules, loses every
/// in-flight message to and from it, and its link state (sequence
/// numbers, send caches) is reset on both sides. At the start of round
/// `at_round + down_rounds` it restarts from its latest checkpoint and
/// re-derives/re-receives the rest.
struct CrashEvent {
  int peer = 0;
  int at_round = 0;
  int down_rounds = 1;
};

struct CrashSchedule {
  std::vector<CrashEvent> events;
  bool empty() const { return events.empty(); }
};

/// A fault schedule and a crash schedule parsed from one spec string, the
/// `--faults=` syntax of the CLI and the declarative-networking example.
struct FaultSpec {
  FaultSchedule faults;
  CrashSchedule crashes;
};

/// Parses a comma-separated fault spec, e.g.
///   "drop=0.1,dup=0.05,reorder=0.2,delay=0.3,max_delay=3,retries=12,
///    backoff=8,partition=2:5:0+1,crash=1:3:2"
/// where partition=FROM:UNTIL:P+P+... isolates peers {P...} during rounds
/// [FROM, UNTIL) and crash=PEER:ROUND:DOWN kills peer PEER at round ROUND
/// for DOWN rounds. Multiple partition=/crash= entries accumulate.
Result<FaultSpec> ParseFaultSpec(const std::string& spec);

/// Deterministic transport counters, surfaced as `dist.*` metrics and via
/// PeerSystem::last_dist_stats().
struct TransportStats {
  /// Payload transmissions handed to the network (including retries).
  int64_t sent = 0;
  /// Payload messages handed to a receiver that were new to its database.
  int64_t delivered = 0;
  /// Transmissions lost to drop probability, partitions, or a down peer.
  int64_t dropped = 0;
  /// Extra in-flight copies injected by the duplicate probability.
  int64_t duplicated = 0;
  /// Arrivals swapped behind a later send of the same round.
  int64_t reordered = 0;
  /// Transmissions deferred past their natural arrival round.
  int64_t delayed = 0;
  /// Retransmissions of an unacknowledged packet.
  int64_t retries = 0;
  /// Arrivals discarded by receiver-side sequence-number dedup.
  int64_t redeliveries = 0;
  /// Cumulative acknowledgements put on the wire.
  int64_t acks = 0;
  /// Retry bursts that hit max_retries and restarted their backoff.
  int64_t expired = 0;
};

/// Pluggable message delivery for PeerSystem::Run. The peer runtime calls
/// Send for every located-head derivation while firing a round, then
/// EndRound once to flush arrivals into the destination databases, then
/// Idle to decide quiescence. Implementations must be deterministic:
/// given the same call sequence (and seed), the same deliveries happen in
/// the same order.
class Transport {
 public:
  /// How EndRound hands arrivals back to the peer runtime (which owns the
  /// per-peer databases).
  class Sink {
   public:
    virtual ~Sink() = default;
    /// Inserts one fact into `dest`'s database; true if it was new.
    virtual bool Deliver(int dest, PredId pred, const Tuple& tuple) = 0;
    /// Unions a whole outbox instance into `dest`; returns #new facts.
    virtual size_t DeliverAll(int dest, const Instance& outbox) = 0;
  };

  /// Read access to a peer's current database, for send-side dedup.
  using DbFn = std::function<const Instance&(int)>;

  virtual ~Transport() = default;

  /// Offers one derived fact for delivery to `dest`'s relation `pred`.
  /// `remote` distinguishes located heads (which count as messages) from
  /// plain local heads; both may have dest == src.
  virtual void Send(int src, int dest, bool remote, PredId pred,
                    const Tuple& tuple) = 0;

  /// Ends global round `round` (1-based): applies every message arriving
  /// this round through `sink` and returns the number of facts that were
  /// new at their destination.
  virtual int64_t EndRound(int round, Sink* sink) = 0;

  /// True when nothing is queued, in flight, or awaiting retransmission.
  /// Quiescence requires Idle() — a silent round with packets still in
  /// flight must not end the run.
  virtual bool Idle() const = 0;

  /// Peer lifecycle hooks for crash simulation. A down peer loses its
  /// in-flight traffic in both directions and its link state is reset so
  /// senders re-offer everything after the restart.
  virtual void OnPeerDown(int peer) { (void)peer; }
  virtual void OnPeerRestart(int peer) { (void)peer; }

  const TransportStats& stats() const { return stats_; }

 protected:
  TransportStats stats_;
};

/// The synchronous, lossless default: per-destination outboxes flushed at
/// the end of each round. Reproduces the historical PeerSystem::Run
/// delivery byte for byte (same dedup against the destination database at
/// send time, same per-destination union order, same message counts).
class ReliableTransport : public Transport {
 public:
  ReliableTransport(const Catalog* catalog, DbFn db);

  void Send(int src, int dest, bool remote, PredId pred,
            const Tuple& tuple) override;
  int64_t EndRound(int round, Sink* sink) override;
  bool Idle() const override { return outboxes_.empty(); }
  void OnPeerDown(int peer) override { down_.insert(peer); }
  void OnPeerRestart(int peer) override { down_.erase(peer); }

 private:
  const Catalog* catalog_;
  DbFn db_;
  std::map<int, Instance> outboxes_;
  std::set<int> down_;
};

/// The fault-injection network. Local (non-located and self-addressed)
/// heads bypass the network; remote messages run the at-least-once
/// protocol described at the top of this header. Fully deterministic
/// given (schedule, seed): all probabilistic draws come from one Rng
/// consumed in sorted link order.
class UnreliableTransport : public Transport {
 public:
  UnreliableTransport(const Catalog* catalog, DbFn db, FaultSchedule schedule,
                      uint64_t seed);

  void Send(int src, int dest, bool remote, PredId pred,
            const Tuple& tuple) override;
  int64_t EndRound(int round, Sink* sink) override;
  bool Idle() const override;
  void OnPeerDown(int peer) override;
  void OnPeerRestart(int peer) override;

  /// When set, structural events (partition open/heal) are appended as
  /// stable one-line strings — the golden crash-restart trace is built
  /// from this log.
  void set_event_log(std::vector<std::string>* log) { event_log_ = log; }

 private:
  using LinkKey = std::pair<int, int>;  // (src, dest)

  /// One unacknowledged packet in a sender's retransmit window.
  struct OutEntry {
    uint32_t seq = 0;
    PredId pred = 0;
    Tuple tuple;
    int attempts = 0;
    int next_attempt_round = 0;
  };

  /// Sender side of a link.
  struct LinkOut {
    uint32_t next_seq = 0;
    std::deque<OutEntry> window;  // unacked, seq ascending
    /// Send cache: facts already offered on this link (in flight or
    /// acked). Cleared when either endpoint crashes, which is what makes
    /// senders re-offer everything a restarted peer lost.
    std::set<std::pair<PredId, Tuple>> offered;
  };

  /// Receiver side of a link: contiguous-prefix dedup state.
  struct LinkIn {
    uint32_t next_expected = 0;
    std::set<uint32_t> out_of_order;
    bool ack_due = false;
  };

  struct Packet {
    int src = 0;
    int dest = 0;
    uint32_t seq = 0;
    PredId pred = 0;
    Tuple tuple;
  };

  struct AckPacket {
    int src = 0;   // the link's sender (the ack's destination)
    int dest = 0;  // the link's receiver (the ack's origin)
    uint32_t cum = 0;
  };

  bool Severed(int round, int src, int dest) const;
  void LogPartitionTransitions(int round);

  const Catalog* catalog_;
  DbFn db_;
  FaultSchedule schedule_;
  Rng rng_;

  std::map<LinkKey, LinkOut> out_;
  std::map<LinkKey, LinkIn> in_;
  /// round -> payloads/acks arriving at the end of that round.
  std::map<int, std::vector<Packet>> arrivals_;
  std::map<int, std::vector<AckPacket>> ack_arrivals_;
  /// Per-destination buffers for network-bypassing local deliveries,
  /// deduplicated exactly like the reliable outboxes.
  std::map<int, Instance> local_;
  std::set<int> down_;
  std::vector<bool> partition_open_;
  std::vector<std::string>* event_log_ = nullptr;
};

// -- Byte-stream channels (the server's wire substrate) -----------------
//
// The concurrent Datalog server (src/server/, docs/server.md) speaks
// length-prefixed frames over a reliable, ordered byte stream. Unlike the
// round-clocked peer transports above, these channels are plain blocking
// streams driven by real threads: an in-process duplex pair for tests and
// benches, and localhost TCP sockets for the `unchained_serve` binary.

/// A reliable, ordered, blocking byte-stream endpoint. Write is
/// all-or-nothing; Read blocks until exactly `n` bytes arrived and
/// returns false on a clean close or error. One writer thread and one
/// reader thread may use an endpoint concurrently (full duplex), but each
/// direction has a single owner.
class ByteChannel {
 public:
  virtual ~ByteChannel() = default;
  virtual bool Write(const void* data, size_t n) = 0;
  virtual bool Read(void* data, size_t n) = 0;
  /// Closes both directions; pending and future Reads return false.
  virtual void Close() = 0;
};

/// An in-process duplex channel pair: bytes written to one endpoint are
/// read from the other, each direction a mutex/condvar byte queue.
/// Closing either endpoint closes the pair.
std::pair<std::unique_ptr<ByteChannel>, std::unique_ptr<ByteChannel>>
InProcessChannelPair();

/// Listening half of a localhost TCP (IPv4) socket transport.
class SocketListener {
 public:
  /// Binds and listens on 127.0.0.1:`port`; port 0 picks an ephemeral
  /// port (read it back with port()).
  static Result<std::unique_ptr<SocketListener>> Listen(int port);
  ~SocketListener();

  int port() const { return port_; }
  /// Blocks for the next connection; nullptr once the listener is closed.
  std::unique_ptr<ByteChannel> Accept();
  /// Unblocks pending and future Accepts. Safe from another thread.
  void Close();

 private:
  SocketListener(int fd, int port) : fd_(fd), port_(port) {}
  std::atomic<int> fd_{-1};  // Close races Accept from another thread
  int port_ = 0;
};

/// Connects to 127.0.0.1:`port`.
Result<std::unique_ptr<ByteChannel>> SocketConnect(int port);

}  // namespace datalog

#endif  // UNCHAINED_DIST_TRANSPORT_H_
