#include "dist/transport.h"

#include <algorithm>
#include <cstdlib>

#include "obs/trace.h"

namespace datalog {

bool NetworkPartition::Severs(int round, int src, int dest) const {
  if (!Active(round)) return false;
  auto in_group = [this](int peer) {
    return std::find(group.begin(), group.end(), peer) != group.end();
  };
  return in_group(src) != in_group(dest);
}

namespace {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool ParseInt(const std::string& s, int* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = static_cast<int>(v);
  return true;
}

Status BadSpec(const std::string& token, const std::string& why) {
  return Status::InvalidProgram("fault spec '" + token + "': " + why);
}

}  // namespace

Result<FaultSpec> ParseFaultSpec(const std::string& spec) {
  FaultSpec out;
  if (spec.empty()) return out;
  for (const std::string& token : Split(spec, ',')) {
    if (token.empty()) continue;
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return BadSpec(token, "expected key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    double d = 0;
    int i = 0;
    if (key == "drop" || key == "dup" || key == "reorder" || key == "delay") {
      if (!ParseDouble(value, &d) || d < 0 || d > 1) {
        return BadSpec(token, "probability must be in [0, 1]");
      }
      if (key == "drop") out.faults.drop = d;
      if (key == "dup") out.faults.duplicate = d;
      if (key == "reorder") out.faults.reorder = d;
      if (key == "delay") out.faults.delay = d;
    } else if (key == "max_delay" || key == "retries" || key == "backoff") {
      if (!ParseInt(value, &i) || i < 1) {
        return BadSpec(token, "expected a positive integer");
      }
      if (key == "max_delay") out.faults.max_delay_rounds = i;
      if (key == "retries") out.faults.max_retries = i;
      if (key == "backoff") out.faults.max_backoff_rounds = i;
    } else if (key == "partition") {
      // partition=FROM:UNTIL:P+P+...
      std::vector<std::string> parts = Split(value, ':');
      NetworkPartition p;
      if (parts.size() != 3 || !ParseInt(parts[0], &p.from_round) ||
          !ParseInt(parts[1], &p.until_round)) {
        return BadSpec(token, "expected FROM:UNTIL:P+P+...");
      }
      if (p.from_round < 1 || p.until_round <= p.from_round) {
        return BadSpec(token, "rounds must satisfy 1 <= FROM < UNTIL");
      }
      for (const std::string& peer : Split(parts[2], '+')) {
        int idx = 0;
        if (!ParseInt(peer, &idx) || idx < 0) {
          return BadSpec(token, "bad peer index '" + peer + "'");
        }
        p.group.push_back(idx);
      }
      out.faults.partitions.push_back(std::move(p));
    } else if (key == "crash") {
      // crash=PEER:ROUND:DOWN
      std::vector<std::string> parts = Split(value, ':');
      CrashEvent ev;
      if (parts.size() != 3 || !ParseInt(parts[0], &ev.peer) ||
          !ParseInt(parts[1], &ev.at_round) ||
          !ParseInt(parts[2], &ev.down_rounds)) {
        return BadSpec(token, "expected PEER:ROUND:DOWN");
      }
      if (ev.peer < 0 || ev.at_round < 1 || ev.down_rounds < 1) {
        return BadSpec(token, "peer/round/down out of range");
      }
      out.crashes.events.push_back(ev);
    } else {
      return BadSpec(token, "unknown key '" + key + "'");
    }
  }
  return out;
}

// -- ReliableTransport ---------------------------------------------------

ReliableTransport::ReliableTransport(const Catalog* catalog, DbFn db)
    : catalog_(catalog), db_(std::move(db)) {}

void ReliableTransport::Send(int src, int dest, bool remote, PredId pred,
                             const Tuple& tuple) {
  (void)src;
  if (down_.count(dest) > 0) {
    // Messages addressed to a dead host are lost; the sender re-offers
    // them after the restart because the restored database fails the
    // send-time dedup below.
    if (remote) ++stats_.dropped;
    return;
  }
  if (db_(dest).Contains(pred, tuple)) return;
  auto [it, created] = outboxes_.try_emplace(dest, Instance(catalog_));
  const bool fresh = it->second.Insert(pred, tuple);
  if (fresh && remote) {
    ++stats_.sent;
    ++stats_.delivered;
  }
}

int64_t ReliableTransport::EndRound(int round, Sink* sink) {
  (void)round;
  int64_t added = 0;
  for (auto& [dest, outbox] : outboxes_) {
    added += static_cast<int64_t>(sink->DeliverAll(dest, outbox));
  }
  outboxes_.clear();
  return added;
}

// -- UnreliableTransport -------------------------------------------------

UnreliableTransport::UnreliableTransport(const Catalog* catalog, DbFn db,
                                         FaultSchedule schedule, uint64_t seed)
    : catalog_(catalog),
      db_(std::move(db)),
      schedule_(std::move(schedule)),
      rng_(seed),
      partition_open_(schedule_.partitions.size(), false) {}

bool UnreliableTransport::Severed(int round, int src, int dest) const {
  for (const NetworkPartition& p : schedule_.partitions) {
    if (p.Severs(round, src, dest)) return true;
  }
  return false;
}

void UnreliableTransport::Send(int src, int dest, bool remote, PredId pred,
                               const Tuple& tuple) {
  if (!remote || src == dest) {
    // Local heads (and self-addressed located heads) bypass the network:
    // a peer cannot lose a message to itself.
    if (db_(dest).Contains(pred, tuple)) return;
    auto [it, created] = local_.try_emplace(dest, Instance(catalog_));
    const bool fresh = it->second.Insert(pred, tuple);
    if (fresh && remote) {
      ++stats_.sent;
      ++stats_.delivered;
    }
    return;
  }
  LinkOut& link = out_[{src, dest}];
  if (!link.offered.insert({pred, tuple}).second) return;  // already in flight
  OutEntry entry;
  entry.seq = link.next_seq++;
  entry.pred = pred;
  entry.tuple = tuple;
  entry.next_attempt_round = 0;  // due immediately
  link.window.push_back(std::move(entry));
}

void UnreliableTransport::LogPartitionTransitions(int round) {
  for (size_t i = 0; i < schedule_.partitions.size(); ++i) {
    const NetworkPartition& p = schedule_.partitions[i];
    const bool active = p.Active(round);
    if (active == partition_open_[i]) continue;
    partition_open_[i] = active;
    OBS_SPAN("dist.partition", {{"round", round}, {"open", active ? 1 : 0}});
    if (event_log_ != nullptr) {
      std::string peers;
      for (size_t k = 0; k < p.group.size(); ++k) {
        if (k > 0) peers += ",";
        peers += std::to_string(p.group[k]);
      }
      event_log_->push_back(
          active ? "round " + std::to_string(round) + ": partition isolates {" +
                       peers + "} until round " + std::to_string(p.until_round)
                 : "round " + std::to_string(round) + ": partition around {" +
                       peers + "} healed");
    }
  }
}

int64_t UnreliableTransport::EndRound(int round, Sink* sink) {
  LogPartitionTransitions(round);

  // 1. Acks arriving this round truncate their link's retransmit window.
  //    Acks are a pure optimization: losing every ack only costs extra
  //    retransmissions, never correctness.
  if (auto it = ack_arrivals_.find(round); it != ack_arrivals_.end()) {
    for (const AckPacket& ack : it->second) {
      auto lo = out_.find({ack.src, ack.dest});
      if (lo == out_.end()) continue;  // link reset by a crash in between
      std::deque<OutEntry>& window = lo->second.window;
      while (!window.empty() && window.front().seq < ack.cum) {
        window.pop_front();
      }
    }
    ack_arrivals_.erase(it);
  }

  // 2. Pump retransmit windows onto the wire in sorted link order — the
  //    fixed iteration order is what makes the Rng draws reproducible.
  for (auto& [key, link] : out_) {
    const int src = key.first;
    const int dest = key.second;
    if (down_.count(src) > 0) continue;  // cleared on crash; defensive
    for (OutEntry& entry : link.window) {
      if (entry.next_attempt_round > round) continue;
      ++entry.attempts;
      if (entry.attempts > 1) ++stats_.retries;
      const int exponent = std::min(entry.attempts - 1, 20);
      const int backoff =
          std::max(1, std::min(1 << exponent, schedule_.max_backoff_rounds));
      entry.next_attempt_round = round + backoff;
      if (entry.attempts >= schedule_.max_retries) {
        // Burst exhausted: restart the backoff (see FaultSchedule — the
        // sender must keep retrying until acknowledged).
        ++stats_.expired;
        entry.attempts = 0;
      }
      ++stats_.sent;
      if (Severed(round, src, dest) || down_.count(dest) > 0) {
        ++stats_.dropped;
        continue;
      }
      if (schedule_.drop > 0 && rng_.Chance(schedule_.drop)) {
        ++stats_.dropped;
        continue;
      }
      int delay = 0;
      if (schedule_.delay > 0 && rng_.Chance(schedule_.delay)) {
        delay = 1 + rng_.UniformInt(std::max(1, schedule_.max_delay_rounds));
        ++stats_.delayed;
      }
      arrivals_[round + delay].push_back(
          Packet{src, dest, entry.seq, entry.pred, entry.tuple});
      if (schedule_.duplicate > 0 && rng_.Chance(schedule_.duplicate)) {
        ++stats_.duplicated;
        int dup_delay = 0;
        if (schedule_.delay > 0 && rng_.Chance(schedule_.delay)) {
          dup_delay =
              1 + rng_.UniformInt(std::max(1, schedule_.max_delay_rounds));
        }
        arrivals_[round + dup_delay].push_back(
            Packet{src, dest, entry.seq, entry.pred, entry.tuple});
      }
    }
  }

  // 3. Deliver this round's arrivals, possibly reordered within the batch.
  int64_t new_facts = 0;
  if (auto it = arrivals_.find(round); it != arrivals_.end()) {
    std::vector<Packet>& batch = it->second;
    if (schedule_.reorder > 0 && batch.size() > 1) {
      for (size_t i = batch.size(); i-- > 1;) {
        if (rng_.Chance(schedule_.reorder)) {
          std::swap(batch[i], batch[rng_.Uniform(i)]);
          ++stats_.reordered;
        }
      }
    }
    for (Packet& pkt : batch) {
      if (down_.count(pkt.dest) > 0) {
        ++stats_.dropped;  // lost at the dead host
        continue;
      }
      LinkIn& in = in_[{pkt.src, pkt.dest}];
      in.ack_due = true;
      const bool seen =
          pkt.seq < in.next_expected || in.out_of_order.count(pkt.seq) > 0;
      if (seen) {
        ++stats_.redeliveries;
        continue;
      }
      in.out_of_order.insert(pkt.seq);
      while (in.out_of_order.count(in.next_expected) > 0) {
        in.out_of_order.erase(in.next_expected);
        ++in.next_expected;
      }
      if (sink->Deliver(pkt.dest, pkt.pred, pkt.tuple)) {
        ++new_facts;
        ++stats_.delivered;
      }
    }
    arrivals_.erase(it);
  }

  // 4. Emit cumulative acks on every link that heard something this round
  //    (fresh or duplicate — a redelivery means an earlier ack was lost).
  for (auto& [key, in] : in_) {
    if (!in.ack_due) continue;
    in.ack_due = false;
    const int link_src = key.first;
    const int link_dest = key.second;
    ++stats_.acks;
    if (Severed(round, link_dest, link_src) ||
        (schedule_.drop > 0 && rng_.Chance(schedule_.drop))) {
      continue;  // ack lost; the sender retries and the receiver re-acks
    }
    ack_arrivals_[round + 1].push_back(
        AckPacket{link_src, link_dest, in.next_expected});
  }

  // 5. Network-bypassing local deliveries.
  for (auto& [dest, outbox] : local_) {
    new_facts += static_cast<int64_t>(sink->DeliverAll(dest, outbox));
  }
  local_.clear();
  return new_facts;
}

bool UnreliableTransport::Idle() const {
  if (!local_.empty() || !arrivals_.empty()) return false;
  for (const auto& [key, link] : out_) {
    if (!link.window.empty()) return false;
  }
  return true;
}

void UnreliableTransport::OnPeerDown(int peer) {
  down_.insert(peer);
  // Both directions of every link touching the peer reset: sequence
  // numbers, retransmit windows and send caches die with the incarnation,
  // so after the restart senders re-offer everything from scratch and the
  // receiver accepts a fresh sequence stream.
  for (auto it = out_.begin(); it != out_.end();) {
    if (it->first.first == peer || it->first.second == peer) {
      it = out_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = in_.begin(); it != in_.end();) {
    if (it->first.first == peer || it->first.second == peer) {
      it = in_.erase(it);
    } else {
      ++it;
    }
  }
  // In-flight traffic involving the peer goes down with it.
  for (auto it = arrivals_.begin(); it != arrivals_.end();) {
    std::vector<Packet>& batch = it->second;
    const size_t before = batch.size();
    batch.erase(std::remove_if(batch.begin(), batch.end(),
                               [peer](const Packet& p) {
                                 return p.src == peer || p.dest == peer;
                               }),
                batch.end());
    stats_.dropped += static_cast<int64_t>(before - batch.size());
    it = batch.empty() ? arrivals_.erase(it) : std::next(it);
  }
  for (auto it = ack_arrivals_.begin(); it != ack_arrivals_.end();) {
    std::vector<AckPacket>& batch = it->second;
    batch.erase(std::remove_if(batch.begin(), batch.end(),
                               [peer](const AckPacket& a) {
                                 return a.src == peer || a.dest == peer;
                               }),
                batch.end());
    it = batch.empty() ? ack_arrivals_.erase(it) : std::next(it);
  }
}

void UnreliableTransport::OnPeerRestart(int peer) { down_.erase(peer); }

}  // namespace datalog
