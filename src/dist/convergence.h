#ifndef UNCHAINED_DIST_CONVERGENCE_H_
#define UNCHAINED_DIST_CONVERGENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"
#include "dist/peers.h"
#include "dist/transport.h"

namespace datalog {

// Empirical CALM checker (docs/distribution.md): the peer dialect is
// monotone (inflationary single-positive-head rules), so by the CALM
// principle its fixpoint must not depend on message timing, loss,
// duplication, reordering, partitions or peer crashes — any fault
// schedule under which every message is eventually delivered converges
// to the reliable run's instances. CheckConvergence tests exactly that:
// one reliable baseline run plus one faulty run per schedule, asserting
// byte-identical final instances peer by peer.
//
// Each run gets a fresh Engine (catalog + symbols), because resolving
// located heads declares predicates in the shared catalog; rebuilding
// from source keeps the runs fully independent.

/// One peer, given by source text so every run can rebuild it against a
/// fresh catalog.
struct PeerSpec {
  std::string name;
  /// Rule source in the peer dialect (see PeerSystem::AddPeer).
  std::string rules;
  /// Initial facts, as fact-statement source; may be empty.
  std::string facts;
};

struct ConvergenceOptions {
  /// Budgets for every run. Faulty runs execute more rounds than the
  /// reliable baseline (retries, backoff, crash recovery), so max_rounds
  /// must leave room beyond the reliable round count.
  EvalOptions eval;
  /// The faulty runs: one UnreliableTransport run per schedule (plus its
  /// crash events). An empty list checks only that the reliable run is
  /// reproducible.
  std::vector<FaultSpec> schedules;
  /// Base RNG seed; the m-th faulty run uses seed + m.
  uint64_t seed = 1;
  /// Checkpoint cadence for runs whose schedule includes crashes.
  int checkpoint_every_rounds = 4;
};

/// The outcome of one CheckConvergence call. `converged` is the CALM
/// verdict; on divergence, `divergence` pins the first mismatching peer
/// with both listings.
struct ConvergenceReport {
  bool converged = false;
  /// Total runs executed (1 reliable + schedules.size() faulty).
  int runs = 0;
  /// Empty when converged; otherwise a human-readable description of the
  /// first mismatch.
  std::string divergence;
  /// Canonical listing of every peer's final instance in the reliable
  /// baseline run, in peer order (Instance::ToString).
  std::vector<std::string> baseline;
  /// Distribution counters of each faulty run, in schedule order.
  std::vector<DistStats> faulty_stats;
};

/// Runs the system reliably once, then once per fault schedule, and
/// compares final instances. Errors (parse failures, exhausted budgets,
/// invalid schedules) surface as a non-OK status; a clean run that merely
/// diverges reports converged = false.
Result<ConvergenceReport> CheckConvergence(const std::vector<PeerSpec>& peers,
                                           const ConvergenceOptions& options);

}  // namespace datalog

#endif  // UNCHAINED_DIST_CONVERGENCE_H_
