// Byte-stream channel implementations (transport.h): the in-process
// duplex pair used by tests/benches and the localhost TCP transport used
// by unchained_serve.

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#include "dist/transport.h"

namespace datalog {

namespace {

/// One direction of the in-process pair: a bounded-by-nothing byte queue.
/// Writers append and signal; readers block until enough bytes or close.
struct Pipe {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<char> bytes;
  bool closed = false;

  bool Write(const void* data, size_t n) {
    std::lock_guard<std::mutex> lock(mu);
    if (closed) return false;
    const char* p = static_cast<const char*>(data);
    bytes.insert(bytes.end(), p, p + n);
    cv.notify_all();
    return true;
  }

  bool Read(void* data, size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return bytes.size() >= n || closed; });
    if (bytes.size() < n) return false;  // closed with a short tail
    char* p = static_cast<char*>(data);
    for (size_t i = 0; i < n; ++i) {
      p[i] = bytes.front();
      bytes.pop_front();
    }
    return true;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu);
    closed = true;
    cv.notify_all();
  }
};

/// Shared state of a channel pair; endpoint A reads what B writes and
/// vice versa.
struct PipePair {
  Pipe a_to_b;
  Pipe b_to_a;
};

class InProcessChannel : public ByteChannel {
 public:
  InProcessChannel(std::shared_ptr<PipePair> pair, bool is_a)
      : pair_(std::move(pair)), is_a_(is_a) {}
  ~InProcessChannel() override { Close(); }

  bool Write(const void* data, size_t n) override {
    return (is_a_ ? pair_->a_to_b : pair_->b_to_a).Write(data, n);
  }
  bool Read(void* data, size_t n) override {
    return (is_a_ ? pair_->b_to_a : pair_->a_to_b).Read(data, n);
  }
  void Close() override {
    pair_->a_to_b.Close();
    pair_->b_to_a.Close();
  }

 private:
  std::shared_ptr<PipePair> pair_;
  bool is_a_;
};

class SocketChannel : public ByteChannel {
 public:
  explicit SocketChannel(int fd) : fd_(fd) {}
  /// The fd is released here, not in Close: Close may race a blocked
  /// Read/Write on another thread, so while the object lives it only
  /// shuts the socket down (which unblocks them); the number stays valid
  /// until the owner destroys the channel.
  ~SocketChannel() override {
    Close();
    ::close(fd_);
  }

  // A signal landing mid-syscall makes send/recv fail with EINTR; that
  // is a retry, not a peer disconnect — only a real error or EOF (recv
  // returning 0) ends the stream.
  bool Write(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    size_t off = 0;
    while (off < n) {
      const ssize_t w = ::send(fd_, p + off, n - off, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) return false;
      off += static_cast<size_t>(w);
    }
    return true;
  }

  bool Read(void* data, size_t n) override {
    char* p = static_cast<char*>(data);
    size_t off = 0;
    while (off < n) {
      const ssize_t r = ::recv(fd_, p + off, n - off, 0);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) return false;
      off += static_cast<size_t>(r);
    }
    return true;
  }

  void Close() override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  const int fd_;
};

}  // namespace

std::pair<std::unique_ptr<ByteChannel>, std::unique_ptr<ByteChannel>>
InProcessChannelPair() {
  auto pair = std::make_shared<PipePair>();
  return {std::make_unique<InProcessChannel>(pair, true),
          std::make_unique<InProcessChannel>(pair, false)};
}

Result<std::unique_ptr<SocketListener>> SocketListener::Listen(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(StatusCode::kInternal, "socket() failed");
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return Status(StatusCode::kInternal,
                  "bind/listen on 127.0.0.1:" + std::to_string(port) +
                      " failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Status(StatusCode::kInternal, "getsockname failed");
  }
  const int bound = ntohs(addr.sin_port);
  return std::unique_ptr<SocketListener>(new SocketListener(fd, bound));
}

SocketListener::~SocketListener() { Close(); }

std::unique_ptr<ByteChannel> SocketListener::Accept() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return nullptr;
  const int client = ::accept(fd, nullptr, nullptr);
  if (client < 0) return nullptr;
  int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<SocketChannel>(client);
}

void SocketListener::Close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown unblocks a pending accept; close releases the port.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Result<std::unique_ptr<ByteChannel>> SocketConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(StatusCode::kInternal, "socket() failed");
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status(StatusCode::kInternal,
                  "connect to 127.0.0.1:" + std::to_string(port) +
                      " failed");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<ByteChannel>(std::make_unique<SocketChannel>(fd));
}

}  // namespace datalog
