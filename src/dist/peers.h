#ifndef UNCHAINED_DIST_PEERS_H_
#define UNCHAINED_DIST_PEERS_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "base/result.h"
#include "base/symbols.h"
#include "eval/context.h"
#include "ra/instance.h"

namespace datalog {

/// Distributed forward chaining in the style of Webdamlog / declarative
/// networking (Section 6, [11, 93]): a system of peers, each holding a
/// local instance and local rules; rule heads may be *located* at another
/// peer, in which case firing the rule sends the derived facts there.
///
/// Locations use a naming convention on predicates: a head over predicate
/// `at_<peer>_<p>` derives `p`-facts delivered to `<peer>`'s relation `p`.
/// (Bodies always read the local instance; there is no remote reading —
/// exactly the "think global, act local" discipline of [16].)
///
/// Delivery is asynchronous: facts derived in round r become visible at
/// the destination in round r+1. Evaluation is inflationary (facts are
/// never retracted) and runs all peers round-robin until global
/// quiescence; it therefore always terminates on finite domains.
class PeerSystem {
 public:
  /// `catalog`/`symbols` are shared by all peers and must outlive the
  /// system.
  PeerSystem(Catalog* catalog, SymbolTable* symbols);

  PeerSystem(const PeerSystem&) = delete;
  PeerSystem& operator=(const PeerSystem&) = delete;

  /// Adds a peer with the given name, rules and initial local facts.
  /// Returns its index. Peer names must be unique and are referenced by
  /// `at_<name>_<pred>` head predicates anywhere in the system.
  Result<int> AddPeer(std::string name, Program program, Instance facts);

  int num_peers() const { return static_cast<int>(peers_.size()); }
  const std::string& PeerName(int peer) const { return peers_[peer].name; }

  /// Runs to global quiescence. Returns the number of rounds executed.
  Result<int> Run(const EvalOptions& options);

  /// The local instance of a peer (valid after Run or before, for the
  /// initial facts).
  const Instance& LocalInstance(int peer) const { return peers_[peer].db; }

  /// Total facts delivered across peers during the last Run.
  int64_t messages_delivered() const { return messages_delivered_; }

  /// Scalar counters aggregated over every peer's evaluation context
  /// during the last Run (rounds = global rounds to quiescence).
  const EvalStats& last_run_stats() const { return last_run_stats_; }

 private:
  struct Peer {
    std::string name;
    Program program;
    Instance db;
  };

  /// Resolves `at_<peer>_<pred>` heads to (destination peer, local pred);
  /// returns {-1, pred} for plain local heads. Unknown destination names
  /// yield an error at Run() start.
  Result<std::pair<int, PredId>> ResolveHead(PredId head_pred) const;

  Catalog* catalog_;
  SymbolTable* symbols_;
  std::vector<Peer> peers_;
  int64_t messages_delivered_ = 0;
  EvalStats last_run_stats_;
};

}  // namespace datalog

#endif  // UNCHAINED_DIST_PEERS_H_
