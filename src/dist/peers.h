#ifndef UNCHAINED_DIST_PEERS_H_
#define UNCHAINED_DIST_PEERS_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "base/result.h"
#include "base/symbols.h"
#include "dist/transport.h"
#include "eval/context.h"
#include "ra/instance.h"

namespace datalog {

/// Counters of one PeerSystem::Run over the distribution machinery: the
/// transport's deterministic message counters plus the crash/recovery
/// bookkeeping. Published as `dist.*` metrics through the registry.
struct DistStats {
  TransportStats transport;
  int64_t crashes = 0;
  int64_t restarts = 0;
  int64_t checkpoints = 0;
  int64_t checkpoint_bytes = 0;
};

/// Per-run configuration beyond the engine budgets.
struct PeerRunOptions {
  EvalOptions eval;
  /// Message delivery; nullptr selects the built-in ReliableTransport
  /// (the exact historical synchronous semantics). The transport must
  /// outlive the Run call and must not be reused across runs.
  Transport* transport = nullptr;
  /// Scripted peer crashes; nullptr/empty disables crash simulation and
  /// checkpointing entirely.
  const CrashSchedule* crashes = nullptr;
  /// Checkpoint cadence in rounds while a crash schedule is present: the
  /// initial databases are always checkpointed at round 1, then every
  /// `checkpoint_every_rounds` rounds. A restarting peer restores its
  /// latest checkpoint and re-derives/re-receives the rest.
  int checkpoint_every_rounds = 4;
  /// When non-null, structural events (checkpoints, crashes, restarts,
  /// partitions) are appended as stable one-line strings — the golden
  /// crash-restart trace pins this log.
  std::vector<std::string>* event_log = nullptr;
};

/// Distributed forward chaining in the style of Webdamlog / declarative
/// networking (Section 6, [11, 93]): a system of peers, each holding a
/// local instance and local rules; rule heads may be *located* at another
/// peer, in which case firing the rule sends the derived facts there.
///
/// Locations use a naming convention on predicates: a head over predicate
/// `at_<peer>_<p>` derives `p`-facts delivered to `<peer>`'s relation `p`.
/// (Bodies always read the local instance; there is no remote reading —
/// exactly the "think global, act local" discipline of [16].)
///
/// Delivery is asynchronous: facts derived in round r become visible at
/// the destination in round r+1. Evaluation is inflationary (facts are
/// never retracted) and runs all peers round-robin until global
/// quiescence; it therefore always terminates on finite domains.
///
/// Delivery is pluggable (dist/transport.h): the default reliable
/// transport is synchronous and lossless, while UnreliableTransport
/// injects deterministic seeded faults (drops, duplicates, reordering,
/// delays, partitions) recovered by an at-least-once protocol, and a
/// CrashSchedule adds peer crash/restart with checkpoint recovery. For
/// the monotone peer dialect every such run converges to the reliable
/// run's instances — the empirical CALM argument checked by
/// dist/convergence.h and documented in docs/distribution.md.
class PeerSystem {
 public:
  /// `catalog`/`symbols` are shared by all peers and must outlive the
  /// system.
  PeerSystem(Catalog* catalog, SymbolTable* symbols);

  PeerSystem(const PeerSystem&) = delete;
  PeerSystem& operator=(const PeerSystem&) = delete;

  /// Adds a peer with the given name, rules and initial local facts.
  /// Returns its index. Peer names must be unique, non-empty and must not
  /// contain '_' — the `at_<peer>_<pred>` head convention could not be
  /// split unambiguously otherwise (with peers "a" and "a_b", the head
  /// `at_a_b_p` would resolve to either).
  Result<int> AddPeer(std::string name, Program program, Instance facts);

  int num_peers() const { return static_cast<int>(peers_.size()); }
  const std::string& PeerName(int peer) const {
    return peers_[static_cast<size_t>(peer)].name;
  }

  /// Runs to global quiescence over the default reliable transport.
  /// Returns the number of rounds that delivered new facts.
  ///
  /// Interrupted runs mutate state: a kBudgetExhausted (round budget or
  /// deadline) or kCancelled return leaves every round delivered so far
  /// in the peers' local instances, including the final, possibly
  /// partially propagated one. This is safe precisely because the peer
  /// dialect is inflationary — facts are never retracted, so the partial
  /// state is a subset of the fixpoint and calling Run again simply
  /// continues from it and converges to the same instances as an
  /// uninterrupted run (asserted by PeersFaultTest.RerunAfterExhaustion).
  Result<int> Run(const EvalOptions& options);

  /// As above, with an explicit transport, crash schedule and checkpoint
  /// cadence. Given the same system, options, transport schedule and
  /// seed, a rerun reproduces the same instances, rounds and DistStats
  /// bit for bit.
  Result<int> Run(const PeerRunOptions& run_options);

  /// The local instance of a peer (valid after Run or before, for the
  /// initial facts).
  const Instance& LocalInstance(int peer) const {
    return peers_[static_cast<size_t>(peer)].db;
  }

  /// Total facts delivered across peers during the last Run.
  int64_t messages_delivered() const { return messages_delivered_; }

  /// Scalar counters aggregated over every peer's evaluation context
  /// during the last Run (rounds = global rounds to quiescence).
  const EvalStats& last_run_stats() const { return last_run_stats_; }

  /// Transport and crash/checkpoint counters of the last Run.
  const DistStats& last_dist_stats() const { return dist_stats_; }

 private:
  struct Peer {
    std::string name;
    Program program;
    Instance db;
  };

  /// Resolves `at_<peer>_<pred>` heads to (destination peer, local pred);
  /// returns {-1, pred} for plain local heads. Unknown destination names
  /// yield an error at Run() start. Unambiguous because peer names cannot
  /// contain '_' (enforced by AddPeer).
  Result<std::pair<int, PredId>> ResolveHead(PredId head_pred) const;

  Catalog* catalog_;
  SymbolTable* symbols_;
  std::vector<Peer> peers_;
  int64_t messages_delivered_ = 0;
  EvalStats last_run_stats_;
  DistStats dist_stats_;
};

}  // namespace datalog

#endif  // UNCHAINED_DIST_PEERS_H_
