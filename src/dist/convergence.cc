#include "dist/convergence.h"

#include <memory>

#include "core/engine.h"

namespace datalog {
namespace {

struct RunOutput {
  std::vector<std::string> listings;
  DistStats dist;
};

/// Builds the system from source against a fresh Engine and runs it once:
/// reliably when `spec` is null, over an UnreliableTransport seeded with
/// `seed` otherwise.
Result<RunOutput> RunOnce(const std::vector<PeerSpec>& peers,
                          const ConvergenceOptions& options,
                          const FaultSpec* spec, uint64_t seed) {
  Engine engine;
  PeerSystem system(&engine.catalog(), &engine.symbols());
  for (const PeerSpec& peer : peers) {
    Result<Program> program = engine.Parse(peer.rules);
    if (!program.ok()) return program.status();
    Instance db = engine.NewInstance();
    if (!peer.facts.empty()) {
      if (Status added = engine.AddFacts(peer.facts, &db); !added.ok()) {
        return added;
      }
    }
    Result<int> index =
        system.AddPeer(peer.name, std::move(program).value(), std::move(db));
    if (!index.ok()) return index.status();
  }

  PeerRunOptions run;
  run.eval = options.eval;
  run.checkpoint_every_rounds = options.checkpoint_every_rounds;
  std::unique_ptr<UnreliableTransport> transport;
  if (spec != nullptr) {
    transport = std::make_unique<UnreliableTransport>(
        &engine.catalog(),
        [&system](int p) -> const Instance& {
          return system.LocalInstance(p);
        },
        spec->faults, seed);
    run.transport = transport.get();
    if (!spec->crashes.empty()) run.crashes = &spec->crashes;
  }

  Result<int> rounds = system.Run(run);
  if (!rounds.ok()) return rounds.status();

  RunOutput out;
  out.dist = system.last_dist_stats();
  out.listings.reserve(static_cast<size_t>(system.num_peers()));
  for (int p = 0; p < system.num_peers(); ++p) {
    // ToString is canonical (predicates and tuples sorted) and renders
    // symbol names, so listings compare across engines even though each
    // run rebuilds its own catalog and symbol table.
    out.listings.push_back(
        system.LocalInstance(p).ToString(engine.symbols()));
  }
  return out;
}

}  // namespace

Result<ConvergenceReport> CheckConvergence(const std::vector<PeerSpec>& peers,
                                           const ConvergenceOptions& options) {
  ConvergenceReport report;

  Result<RunOutput> baseline =
      RunOnce(peers, options, /*spec=*/nullptr, /*seed=*/0);
  if (!baseline.ok()) return baseline.status();
  report.baseline = baseline->listings;
  report.runs = 1;
  report.converged = true;

  for (size_t m = 0; m < options.schedules.size(); ++m) {
    Result<RunOutput> faulty =
        RunOnce(peers, options, &options.schedules[m],
                options.seed + static_cast<uint64_t>(m));
    if (!faulty.ok()) return faulty.status();
    ++report.runs;
    report.faulty_stats.push_back(faulty->dist);
    if (!report.converged) continue;  // keep counting runs, report first
    for (size_t p = 0; p < report.baseline.size(); ++p) {
      if (faulty->listings[p] == report.baseline[p]) continue;
      report.converged = false;
      report.divergence =
          "schedule " + std::to_string(m) + ", peer '" + peers[p].name +
          "': faulty run diverged from the reliable baseline.\n-- reliable:\n" +
          report.baseline[p] + "-- faulty:\n" + faulty->listings[p];
      break;
    }
  }
  return report;
}

}  // namespace datalog
