#ifndef UNCHAINED_OBS_METRICS_H_
#define UNCHAINED_OBS_METRICS_H_

// Process-wide metrics registry: named counters, gauges and fixed-bucket
// latency histograms (docs/observability.md).
//
// Design goals, in order:
//   1. A disabled registry must be near-free at every call site: one
//      relaxed atomic load and a predictable branch, no locks, no
//      allocation.
//   2. The enabled hot path must be lock-free and contention-free:
//      counters and histogram buckets live in per-thread shards (each
//      slot written by exactly one thread, so increments are a relaxed
//      load + relaxed store, never an RMW), merged only when a reader
//      asks for a snapshot.
//   3. Deterministic totals: merging shards is pure addition, so the
//      summed counters are independent of scheduling — the
//      metrics-exactness tests compare them against LastRunStats at
//      num_threads ∈ {1, 2, 8}.
//
// Registration (name → dense MetricId) takes a mutex and is expected at
// setup time; call sites cache the id (usually in a function-local
// static). Gauges are last-write-wins process globals, not sharded.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace datalog {
namespace obs {

/// Dense id of a registered metric; stable for the process lifetime.
using MetricId = uint32_t;

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

/// Histograms use fixed power-of-two microsecond buckets: bucket 0 holds
/// observations in [0, 1) µs, bucket i in [2^(i-1), 2^i) µs, and the last
/// bucket is the overflow sink (>= ~32 ms).
inline constexpr uint32_t kHistogramBuckets = 16;

/// One merged metric in a registry snapshot.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// Counter total or gauge value; for histograms the observation count.
  int64_t value = 0;
  /// Histograms only: per-bucket counts and the sum of raw observations.
  std::vector<int64_t> buckets;
  int64_t sum_us = 0;
};

class MetricsRegistry {
 public:
  /// The process-wide registry. Never destroyed (thread shards retire
  /// into it from thread_local destructors).
  static MetricsRegistry& Get();

  /// Registration is idempotent: the same name returns the same id. A
  /// kind mismatch on re-registration aborts — metric names are a
  /// process-global namespace.
  MetricId Counter(const std::string& name);
  MetricId Gauge(const std::string& name);
  MetricId Histogram(const std::string& name);

  /// Collection gate. While disabled, Add/Set/Observe are no-ops after
  /// one relaxed load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // -- Hot path --------------------------------------------------------

  /// Adds `delta` to a counter.
  void Add(MetricId id, int64_t delta);
  /// Sets a gauge (last write wins across threads).
  void Set(MetricId id, int64_t value);
  /// Records one latency observation, in microseconds.
  void Observe(MetricId id, int64_t micros);

  // -- Readers (take the registry mutex; not for hot paths) ------------

  /// Merged values of every registered metric, sorted by name.
  std::vector<MetricValue> Snapshot() const;
  /// Merged value of one counter/gauge by name; 0 when unregistered.
  int64_t Value(const std::string& name) const;
  /// Plain-text dump, one `name kind value` line per metric, sorted.
  std::string DumpText() const;
  /// Zeroes every metric (live shards, retired totals, gauges). Intended
  /// for tests; concurrent writers may lose in-flight increments.
  void Reset();

  /// The bucket index Observe files `micros` under (exposed for tests).
  static uint32_t BucketFor(int64_t micros);

  // -- Internal (public only for the thread-exit hook in metrics.cc) ---

  // Counters occupy one slot per shard; histograms occupy
  // kHistogramBuckets + 1 consecutive slots (buckets, then the µs sum).
  // A shard is a fixed-size slab so registration never resizes memory
  // that another thread is writing through.
  static constexpr uint32_t kMaxSlots = 4096;
  static constexpr uint32_t kMaxMetrics = 512;

  struct Shard {
    std::atomic<int64_t> slots[kMaxSlots] = {};
  };

  /// Folds a dying thread's shard into the retired totals and frees it.
  void RetireShard(Shard* shard);

 private:
  struct Metric {
    std::string name;
    MetricKind kind;
    uint32_t slot = 0;        // first shard slot (counters, histograms)
    uint32_t gauge_index = 0; // gauges only
  };

  /// Hot-path lookup table, indexed by MetricId. Entries are written
  /// under `mu_` before the id is handed out, and a call site can only
  /// hold an id whose registration completed (handle construction
  /// synchronizes-with its users), so reads need no lock.
  struct HotInfo {
    uint32_t slot = 0;
    std::atomic<int64_t>* gauge = nullptr;
  };

  MetricsRegistry() = default;
  ~MetricsRegistry() = delete;  // leaky singleton

  MetricId Register(const std::string& name, MetricKind kind,
                    uint32_t slots_needed);
  /// This thread's shard, created and registered on first use.
  Shard* LocalShard();
  /// Sums `slot` across live shards and the retired totals. Caller holds
  /// `mu_`.
  int64_t SumSlotLocked(uint32_t slot) const;
  MetricValue ReadLocked(const Metric& m) const;

  std::atomic<bool> enabled_{false};
  HotInfo hot_[kMaxMetrics] = {};

  mutable std::mutex mu_;
  std::vector<Metric> metrics_;
  uint32_t next_slot_ = 0;
  std::vector<Shard*> shards_;
  /// Totals folded in from shards of exited threads.
  std::vector<int64_t> retired_ = std::vector<int64_t>(kMaxSlots, 0);
  std::vector<std::unique_ptr<std::atomic<int64_t>>> gauges_;
};

// -- Cached-handle convenience -----------------------------------------
//
// Call sites bump metrics through small handle objects that cache the
// MetricId, so the steady state is: relaxed load of `enabled_`, branch,
// and (when enabled) one shard-slot store. Typical use:
//
//   static obs::CounterHandle rounds("eval.rounds");
//   rounds.Add(1);

class CounterHandle {
 public:
  explicit CounterHandle(const char* name)
      : id_(MetricsRegistry::Get().Counter(name)) {}
  void Add(int64_t delta) { MetricsRegistry::Get().Add(id_, delta); }

 private:
  MetricId id_;
};

class GaugeHandle {
 public:
  explicit GaugeHandle(const char* name)
      : id_(MetricsRegistry::Get().Gauge(name)) {}
  void Set(int64_t value) { MetricsRegistry::Get().Set(id_, value); }

 private:
  MetricId id_;
};

class HistogramHandle {
 public:
  explicit HistogramHandle(const char* name)
      : id_(MetricsRegistry::Get().Histogram(name)) {}
  void Observe(int64_t micros) { MetricsRegistry::Get().Observe(id_, micros); }

 private:
  MetricId id_;
};

/// RAII latency sample: observes the enclosing scope's wall-clock
/// duration (µs) into a histogram on destruction. Honors goal 1 above —
/// when the registry is disabled at construction, neither clock is read.
///
///   static obs::HistogramHandle request_us("server.request_us");
///   obs::ScopedLatency sample(&request_us);
class ScopedLatency {
 public:
  explicit ScopedLatency(HistogramHandle* histogram) {
    if (MetricsRegistry::Get().enabled()) {
      histogram_ = histogram;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Observe(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }

 private:
  HistogramHandle* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace datalog

#endif  // UNCHAINED_OBS_METRICS_H_
