#include "obs/trace.h"

namespace datalog {
namespace obs {
namespace {

/// Thread-local ring cache. `epoch` says which tracing session the
/// cached pointer belongs to; a stale pointer is never written through —
/// LocalRing re-acquires instead (Enable deleted the old ring).
struct RingCache {
  Tracer::Ring* ring = nullptr;
  uint64_t epoch = 0;
};

thread_local RingCache tls_ring;

}  // namespace

Tracer& Tracer::Get() {
  // Leaky singleton: span destructors can run during thread teardown,
  // after function-local statics would have been destroyed.
  static Tracer* instance = new Tracer();
  return *instance;
}

void Tracer::Enable(size_t events_per_thread) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Ring* ring : rings_) delete ring;
  rings_.clear();
  capacity_ = events_per_thread == 0 ? 1 : events_per_thread;
  session_start_ = std::chrono::steady_clock::now();
  // Publish the new session before allowing recording: a thread that
  // sees enabled_ == true will then re-acquire its ring via the new
  // epoch.
  epoch_.fetch_add(1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() {
  enabled_.store(false, std::memory_order_release);
}

Tracer::Ring* Tracer::LocalRing() {
  const uint64_t current = epoch();
  if (tls_ring.ring != nullptr && tls_ring.epoch == current) {
    return tls_ring.ring;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Re-check under the lock: Enable may have advanced the epoch between
  // the relaxed read above and here; registering against the old epoch
  // would leak a ring into the new session's list.
  if (epoch_.load(std::memory_order_relaxed) != current ||
      !enabled_.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  auto* ring = new Ring(static_cast<uint32_t>(rings_.size()), capacity_);
  rings_.push_back(ring);
  tls_ring.ring = ring;
  tls_ring.epoch = current;
  return ring;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  for (const Ring* ring : rings_) {
    const size_t cap = ring->events.size();
    const uint64_t total = ring->next_seq;
    const uint64_t first = total > cap ? total - cap : 0;
    for (uint64_t seq = first; seq < total; ++seq) {
      out.push_back(ring->events[seq % cap]);
    }
  }
  return out;
}

int64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (const Ring* ring : rings_) {
    const uint64_t cap = ring->events.size();
    if (ring->next_seq > cap) {
      dropped += static_cast<int64_t>(ring->next_seq - cap);
    }
  }
  return dropped;
}

}  // namespace obs
}  // namespace datalog
