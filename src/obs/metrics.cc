#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace datalog {
namespace obs {
namespace {

/// Single-writer relaxed increment: each slot is written by exactly one
/// thread (its shard owner), so load+store beats an RMW on the hot path.
inline void BumpRelaxed(std::atomic<int64_t>& slot, int64_t delta) {
  slot.store(slot.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

/// Ties a shard's lifetime to its thread: when the thread exits, the
/// shard's totals are folded into the registry's retired sums so no
/// counts are lost and Snapshot never reads freed memory.
struct ShardOwner {
  MetricsRegistry::Shard* shard = nullptr;
  ~ShardOwner() {
    if (shard != nullptr) MetricsRegistry::Get().RetireShard(shard);
  }
};

thread_local ShardOwner tls_shard;

}  // namespace

MetricsRegistry& MetricsRegistry::Get() {
  // Leaky singleton: thread_local ShardOwner destructors may run during
  // process teardown, after function-local statics would be destroyed.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

MetricId MetricsRegistry::Register(const std::string& name, MetricKind kind,
                                   uint32_t slots_needed) {
  std::lock_guard<std::mutex> lock(mu_);
  for (MetricId id = 0; id < metrics_.size(); ++id) {
    if (metrics_[id].name != name) continue;
    if (metrics_[id].kind != kind) {
      std::fprintf(stderr,
                   "obs: metric '%s' re-registered with a different kind\n",
                   name.c_str());
      std::abort();
    }
    return id;
  }
  if (metrics_.size() == kMaxMetrics) {
    std::fprintf(stderr, "obs: metric id space exhausted at '%s'\n",
                 name.c_str());
    std::abort();
  }
  Metric m;
  m.name = name;
  m.kind = kind;
  const MetricId id = static_cast<MetricId>(metrics_.size());
  if (kind == MetricKind::kGauge) {
    m.gauge_index = static_cast<uint32_t>(gauges_.size());
    gauges_.push_back(std::make_unique<std::atomic<int64_t>>(0));
    hot_[id].gauge = gauges_.back().get();
  } else {
    if (next_slot_ + slots_needed > kMaxSlots) {
      std::fprintf(stderr, "obs: metric slot space exhausted at '%s'\n",
                   name.c_str());
      std::abort();
    }
    m.slot = next_slot_;
    hot_[id].slot = next_slot_;
    next_slot_ += slots_needed;
  }
  metrics_.push_back(std::move(m));
  return id;
}

MetricId MetricsRegistry::Counter(const std::string& name) {
  return Register(name, MetricKind::kCounter, 1);
}

MetricId MetricsRegistry::Gauge(const std::string& name) {
  return Register(name, MetricKind::kGauge, 0);
}

MetricId MetricsRegistry::Histogram(const std::string& name) {
  return Register(name, MetricKind::kHistogram, kHistogramBuckets + 1);
}

MetricsRegistry::Shard* MetricsRegistry::LocalShard() {
  if (tls_shard.shard == nullptr) {
    auto* shard = new Shard();
    {
      std::lock_guard<std::mutex> lock(mu_);
      shards_.push_back(shard);
    }
    tls_shard.shard = shard;
  }
  return tls_shard.shard;
}

void MetricsRegistry::RetireShard(Shard* shard) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t i = 0; i < kMaxSlots; ++i) {
    retired_[i] += shard->slots[i].load(std::memory_order_relaxed);
  }
  shards_.erase(std::remove(shards_.begin(), shards_.end(), shard),
                shards_.end());
  delete shard;
}

void MetricsRegistry::Add(MetricId id, int64_t delta) {
  if (!enabled()) return;
  BumpRelaxed(LocalShard()->slots[hot_[id].slot], delta);
}

void MetricsRegistry::Set(MetricId id, int64_t value) {
  if (!enabled()) return;
  hot_[id].gauge->store(value, std::memory_order_relaxed);
}

uint32_t MetricsRegistry::BucketFor(int64_t micros) {
  if (micros <= 0) return 0;
  uint32_t bucket = 1;
  int64_t upper = 1;  // bucket i covers [2^(i-1), 2^i) µs
  while (bucket < kHistogramBuckets - 1 && micros >= upper * 2) {
    upper *= 2;
    ++bucket;
  }
  return bucket;
}

void MetricsRegistry::Observe(MetricId id, int64_t micros) {
  if (!enabled()) return;
  Shard* shard = LocalShard();
  const uint32_t slot = hot_[id].slot;
  BumpRelaxed(shard->slots[slot + BucketFor(micros)], 1);
  BumpRelaxed(shard->slots[slot + kHistogramBuckets], micros);
}

int64_t MetricsRegistry::SumSlotLocked(uint32_t slot) const {
  int64_t total = retired_[slot];
  for (const Shard* shard : shards_) {
    total += shard->slots[slot].load(std::memory_order_relaxed);
  }
  return total;
}

MetricValue MetricsRegistry::ReadLocked(const Metric& m) const {
  MetricValue out;
  out.name = m.name;
  out.kind = m.kind;
  switch (m.kind) {
    case MetricKind::kCounter:
      out.value = SumSlotLocked(m.slot);
      break;
    case MetricKind::kGauge:
      out.value = gauges_[m.gauge_index]->load(std::memory_order_relaxed);
      break;
    case MetricKind::kHistogram: {
      out.buckets.resize(kHistogramBuckets);
      for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] = SumSlotLocked(m.slot + b);
        out.value += out.buckets[b];
      }
      out.sum_us = SumSlotLocked(m.slot + kHistogramBuckets);
      break;
    }
  }
  return out;
}

std::vector<MetricValue> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricValue> out;
  out.reserve(metrics_.size());
  for (const Metric& m : metrics_) out.push_back(ReadLocked(m));
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

int64_t MetricsRegistry::Value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Metric& m : metrics_) {
    if (m.name == name) return ReadLocked(m).value;
  }
  return 0;
}

std::string MetricsRegistry::DumpText() const {
  std::string out;
  for (const MetricValue& m : Snapshot()) {
    out += m.name;
    switch (m.kind) {
      case MetricKind::kCounter:
        out += " counter " + std::to_string(m.value);
        break;
      case MetricKind::kGauge:
        out += " gauge " + std::to_string(m.value);
        break;
      case MetricKind::kHistogram: {
        out += " histogram count=" + std::to_string(m.value) +
               " sum_us=" + std::to_string(m.sum_us) + " buckets=";
        for (size_t b = 0; b < m.buckets.size(); ++b) {
          if (b > 0) out += ",";
          out += std::to_string(m.buckets[b]);
        }
        break;
      }
    }
    out += "\n";
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(retired_.begin(), retired_.end(), 0);
  for (Shard* shard : shards_) {
    for (uint32_t i = 0; i < kMaxSlots; ++i) {
      shard->slots[i].store(0, std::memory_order_relaxed);
    }
  }
  for (auto& gauge : gauges_) gauge->store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace datalog
