#ifndef UNCHAINED_OBS_EXPORT_H_
#define UNCHAINED_OBS_EXPORT_H_

// Exporters for the observability subsystem (docs/observability.md):
//   * Chrome trace-event JSON — load the file in Perfetto
//     (https://ui.perfetto.dev) or chrome://tracing.
//   * RenderSpanTree — a deterministic, timestamp-free text rendering of
//     the span nesting, used by the golden-trace tests.
//   * Metrics: the plain-text dump lives on MetricsRegistry::DumpText.

#include <string>
#include <vector>

#include "obs/trace.h"

namespace datalog {
namespace obs {

/// Renders `events` as Chrome trace-event JSON ("ph":"X" complete
/// events, timestamps in microseconds, sorted ascending by start time).
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

/// Snapshots the global Tracer and writes Chrome trace JSON to `path`.
/// Returns false (with a message on stderr) when the file can't be
/// written.
bool WriteChromeTrace(const std::string& path);

/// Deterministic text rendering of the span forest: one `thread N:`
/// block per recording thread, children indented two spaces below their
/// parent, arguments appended as `key=value`. Timestamps and durations
/// are omitted, so the output is stable run-to-run whenever the span
/// structure is — the golden-trace tests compare against it verbatim.
/// The tree is reconstructed from (tid, seq, depth) alone: per thread,
/// events arrive in completion order, so a span's children are exactly
/// the spans completed at depth+1 since the previous depth-or-shallower
/// event. Threads whose ring overflowed would yield a partial forest;
/// size capacities to the workload (Tracer::dropped() tells you).
std::string RenderSpanTree(const std::vector<TraceEvent>& events);

/// Command-line observability toggles shared by the benches, examples
/// and tools: scans argv for `--trace=<path>` and `--metrics`, enables
/// the tracer/registry for the object's lifetime, and exports on
/// destruction (Chrome trace JSON to the path; the metrics dump to
/// stdout). Unrelated arguments are ignored, so harnesses can hand over
/// their raw (argc, argv) unfiltered. With neither flag present this is
/// inert.
class ObsArgs {
 public:
  ObsArgs(int argc, char** argv);
  ~ObsArgs();

  ObsArgs(const ObsArgs&) = delete;
  ObsArgs& operator=(const ObsArgs&) = delete;

 private:
  std::string trace_path_;
  bool metrics_ = false;
};

}  // namespace obs
}  // namespace datalog

#endif  // UNCHAINED_OBS_EXPORT_H_
