#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

#include "obs/metrics.h"

namespace datalog {
namespace obs {
namespace {

std::string EscapeJson(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

struct Node {
  const TraceEvent* event;
  std::vector<Node> children;
};

void RenderNode(const Node& node, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(node.event->name);
  for (uint32_t i = 0; i < node.event->num_args; ++i) {
    out->push_back(' ');
    out->append(node.event->args[i].key);
    out->push_back('=');
    out->append(std::to_string(node.event->args[i].value));
  }
  out->push_back('\n');
  for (const Node& child : node.children) RenderNode(child, indent + 1, out);
}

}  // namespace

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::vector<const TraceEvent*> sorted;
  sorted.reserve(events.size());
  for (const TraceEvent& e : events) sorted.push_back(&e);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     if (a->start_us != b->start_us) {
                       return a->start_us < b->start_us;
                     }
                     if (a->tid != b->tid) return a->tid < b->tid;
                     // Same thread, same microsecond: the outer span
                     // completed later but must open first.
                     return a->depth < b->depth;
                   });
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent* e : sorted) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\": \"";
    out += EscapeJson(e->name);
    out += "\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    out += std::to_string(e->tid);
    out += ", \"ts\": ";
    out += std::to_string(e->start_us);
    out += ", \"dur\": ";
    out += std::to_string(e->dur_us);
    if (e->num_args > 0) {
      out += ", \"args\": {";
      for (uint32_t i = 0; i < e->num_args; ++i) {
        if (i > 0) out += ", ";
        out += "\"";
        out += EscapeJson(e->args[i].key);
        out += "\": ";
        out += std::to_string(e->args[i].value);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "obs: cannot write trace file %s\n", path.c_str());
    return false;
  }
  out << ChromeTraceJson(Tracer::Get().Snapshot());
  return out.good();
}

std::string RenderSpanTree(const std::vector<TraceEvent>& events) {
  // Partition by thread, keeping each thread's completion (seq) order.
  std::map<uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& e : events) by_tid[e.tid].push_back(&e);
  std::string out;
  for (auto& [tid, list] : by_tid) {
    std::stable_sort(list.begin(), list.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       return a->seq < b->seq;
                     });
    // Completion order is a post-order walk: when a span at depth d
    // completes, every span it enclosed (depth d+1) has already
    // completed and is waiting in pending[d+1].
    std::vector<std::vector<Node>> pending;
    for (const TraceEvent* e : list) {
      const size_t d = e->depth;
      if (pending.size() <= d + 1) pending.resize(d + 2);
      Node node{e, std::move(pending[d + 1])};
      pending[d + 1].clear();
      pending[d].push_back(std::move(node));
    }
    out += "thread " + std::to_string(tid) + ":\n";
    if (!pending.empty()) {
      for (const Node& root : pending[0]) RenderNode(root, 1, &out);
    }
  }
  return out;
}

ObsArgs::ObsArgs(int argc, char** argv) {
  static constexpr char kTracePrefix[] = "--trace=";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, kTracePrefix, sizeof(kTracePrefix) - 1) == 0) {
      trace_path_ = arg + sizeof(kTracePrefix) - 1;
    } else if (std::strcmp(arg, "--metrics") == 0) {
      metrics_ = true;
    }
  }
  if (!trace_path_.empty()) Tracer::Get().Enable();
  if (metrics_) {
    MetricsRegistry::Get().Reset();
    MetricsRegistry::Get().SetEnabled(true);
  }
}

ObsArgs::~ObsArgs() {
  if (metrics_) {
    MetricsRegistry::Get().SetEnabled(false);
    std::printf("%% metrics\n%s", MetricsRegistry::Get().DumpText().c_str());
  }
  if (!trace_path_.empty()) {
    Tracer::Get().Disable();
    WriteChromeTrace(trace_path_);
  }
}

}  // namespace obs
}  // namespace datalog
