#ifndef UNCHAINED_OBS_TRACE_H_
#define UNCHAINED_OBS_TRACE_H_

// Scoped tracing spans (docs/observability.md). A span is an RAII scope:
//
//   OBS_SPAN("seminaive.round", {{"round", r}});
//
// records one event — name, wall-clock start/duration in microseconds,
// dense thread id, nesting depth, and up to two integer arguments — into
// a bounded per-thread ring buffer when tracing is enabled. While
// tracing is disabled (the default), constructing a span is one relaxed
// atomic load and a branch; nothing is allocated and no clock is read.
//
// Span names must be string literals (the tracer stores the pointer).
// Typical session: Tracer::Get().Enable() → run the workload →
// Tracer::Get().Disable() → obs::WriteChromeTrace(path) (export.h).
// Enable/Disable are meant for quiescent points — enabling mid-span
// loses the spans in flight, nothing worse.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <vector>

namespace datalog {
namespace obs {

/// One integer-valued span argument; `key` must be a string literal.
struct SpanArg {
  const char* key;
  int64_t value;
};

inline constexpr uint32_t kMaxSpanArgs = 2;

/// A completed span, recorded at scope exit.
struct TraceEvent {
  const char* name = nullptr;
  /// Microseconds since Tracer::Enable.
  int64_t start_us = 0;
  int64_t dur_us = 0;
  /// Dense thread id, assigned in order of first span per thread after
  /// the last Enable (the enabling thread is 0 if it spans first).
  uint32_t tid = 0;
  /// Nesting depth on the recording thread (0 = thread-root span).
  uint32_t depth = 0;
  /// Per-thread completion sequence number; events with the same tid are
  /// totally ordered by `seq` (the order the ring received them).
  uint64_t seq = 0;
  uint32_t num_args = 0;
  SpanArg args[kMaxSpanArgs] = {};
};

class Tracer {
 public:
  static Tracer& Get();

  /// Starts a fresh tracing session: drops any events from a previous
  /// session and allows up to `events_per_thread` buffered events per
  /// thread (older events are overwritten ring-style beyond that).
  void Enable(size_t events_per_thread = kDefaultCapacity);
  /// Stops recording. Buffered events stay readable until the next
  /// Enable.
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// All buffered events of the current session, from every thread,
  /// oldest-first per thread. Call after Disable (or at a quiescent
  /// point).
  std::vector<TraceEvent> Snapshot() const;
  /// Events that were overwritten because a ring filled up.
  int64_t dropped() const;

  static constexpr size_t kDefaultCapacity = 1 << 16;

  // -- Internal (used by SpanScope) ------------------------------------

  struct Ring {
    explicit Ring(uint32_t tid, size_t capacity)
        : tid(tid), events(capacity) {}
    const uint32_t tid;
    std::vector<TraceEvent> events;
    uint64_t next_seq = 0;   // total events ever pushed
    uint32_t depth = 0;      // current nesting depth on the owner thread
    void Push(const TraceEvent& e) {
      TraceEvent& slot = events[next_seq % events.size()];
      slot = e;
      slot.tid = tid;
      slot.seq = next_seq++;
    }
  };

  /// The calling thread's ring for the current session (creating and
  /// registering it on first use), or nullptr when tracing is disabled.
  Ring* LocalRing();
  /// Session id; bumped by Enable so stale thread-local ring pointers
  /// are re-acquired instead of written to.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  int64_t NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - session_start_)
        .count();
  }

 private:
  Tracer() = default;
  ~Tracer() = delete;  // leaky singleton

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> epoch_{0};

  mutable std::mutex mu_;
  std::vector<Ring*> rings_;  // owned; cleared on Enable
  size_t capacity_ = kDefaultCapacity;
  std::chrono::steady_clock::time_point session_start_{};
};

/// RAII span scope. Prefer the OBS_SPAN macro, which names the local for
/// you. Captures the tracer state once in the constructor; if tracing is
/// toggled while the scope is open, the event is dropped rather than
/// written into a stale session.
class SpanScope {
 public:
  explicit SpanScope(const char* name) : SpanScope(name, {}) {}

  SpanScope(const char* name, std::initializer_list<SpanArg> args) {
    Tracer& tracer = Tracer::Get();
    if (!tracer.enabled()) return;
    ring_ = tracer.LocalRing();
    if (ring_ == nullptr) return;
    epoch_ = tracer.epoch();
    name_ = name;
    num_args_ = 0;
    for (const SpanArg& a : args) {
      if (num_args_ == kMaxSpanArgs) break;
      args_[num_args_++] = a;
    }
    ++ring_->depth;
    start_us_ = tracer.NowUs();
  }

  ~SpanScope() {
    if (ring_ == nullptr) return;
    Tracer& tracer = Tracer::Get();
    const int64_t end_us = tracer.NowUs();
    if (tracer.epoch() != epoch_) return;  // session changed mid-span
    --ring_->depth;
    TraceEvent e;
    e.name = name_;
    e.start_us = start_us_;
    e.dur_us = end_us - start_us_;
    e.depth = ring_->depth;
    e.num_args = num_args_;
    for (uint32_t i = 0; i < num_args_; ++i) e.args[i] = args_[i];
    ring_->Push(e);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Tracer::Ring* ring_ = nullptr;
  uint64_t epoch_ = 0;
  const char* name_ = nullptr;
  int64_t start_us_ = 0;
  uint32_t num_args_ = 0;
  SpanArg args_[kMaxSpanArgs] = {};
};

#define OBS_INTERNAL_CONCAT2(a, b) a##b
#define OBS_INTERNAL_CONCAT(a, b) OBS_INTERNAL_CONCAT2(a, b)
/// OBS_SPAN("name") or OBS_SPAN("name", {{"key", value}, ...}) — opens a
/// span covering the rest of the enclosing scope.
#define OBS_SPAN(...) \
  ::datalog::obs::SpanScope OBS_INTERNAL_CONCAT(obs_span_, __LINE__)(__VA_ARGS__)

}  // namespace obs
}  // namespace datalog

#endif  // UNCHAINED_OBS_TRACE_H_
