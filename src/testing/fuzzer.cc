#include "testing/fuzzer.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <utility>

#include "core/engine.h"

namespace datalog {
namespace fuzz {
namespace {

/// Per-case seed: decorrelates consecutive cases while keeping the whole
/// run a pure function of (options.seed, case index).
uint64_t CaseSeed(uint64_t seed, int case_index) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL *
                          (static_cast<uint64_t>(case_index) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  return x;
}

struct MetamorphicOutcome {
  bool applicable = false;
  bool agreed = true;
  std::string detail;
};

/// Evaluates original and mutant in one engine (shared symbols, so tuple
/// values are directly comparable) and diffs each original idb relation
/// against its (possibly renamed) counterpart.
MetamorphicOutcome CheckMutant(const std::string& program_text,
                               const std::string& facts_text, Mutation m,
                               uint64_t mutation_seed,
                               storage::StorageBackend backend) {
  MetamorphicOutcome out;
  Rng mrng(mutation_seed);
  MetamorphicMutator mutator;
  Result<MutatedProgram> mutated = mutator.Apply(m, program_text, &mrng);
  if (!mutated.ok()) return out;  // unparseable candidate: inapplicable

  Engine engine;
  engine.options().storage = backend;
  Result<Program> original = engine.Parse(program_text);
  if (!original.ok()) return out;
  if (!engine.Validate(*original, Dialect::kStratified).ok()) return out;
  Result<Program> mutant = engine.Parse(mutated->program);
  if (!mutant.ok()) {
    out.applicable = true;
    out.agreed = false;
    out.detail = "mutant does not parse: " + mutant.status().ToString();
    return out;
  }
  Instance db = engine.NewInstance();
  if (!engine.AddFacts(facts_text, &db).ok()) return out;

  Result<Instance> base = engine.Stratified(*original, db);
  if (!base.ok()) return out;  // original unevaluable: inapplicable
  out.applicable = true;
  Result<Instance> mut = engine.Stratified(*mutant, db);
  if (!mut.ok()) {
    out.agreed = false;
    out.detail = "mutant evaluation failed: " + mut.status().ToString();
    return out;
  }
  for (PredId p : original->idb_preds) {
    const std::string& name = engine.catalog().NameOf(p);
    PredId q = engine.catalog().Find(mutated->Renamed(name));
    if (q < 0 || base->Rel(p).Sorted() != mut->Rel(q).Sorted()) {
      out.agreed = false;
      out.detail = "relation " + name + " changed under " +
                   MutationName(m) + " (mutant predicate " +
                   std::string(mutated->Renamed(name)) + ")";
      return out;
    }
  }
  return out;
}

void Log(const FuzzOptions& options, const std::string& line) {
  if (options.log != nullptr) *options.log << line << '\n';
}

}  // namespace

int64_t FuzzReport::TotalChecks() const {
  int64_t total = 0;
  for (const auto& [name, count] : checks_by_name) total += count;
  for (const auto& [name, count] : mutants_by_name) total += count;
  return total;
}

std::string WriteRepro(const std::string& dir, const FuzzFailure& failure,
                       uint64_t seed) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "";
  std::string check = failure.check;
  for (char& c : check) {
    if (c == ':' || c == '/') c = '-';
  }
  const std::string stem =
      dir + "/case" + std::to_string(failure.case_index) + "-" + check;
  const std::string& program =
      failure.shrunk ? failure.shrunk_program : failure.program;
  const std::string& facts =
      failure.shrunk ? failure.shrunk_facts : failure.facts;
  {
    std::ofstream f(stem + ".dl");
    if (!f) return "";
    f << program;
  }
  {
    std::ofstream f(stem + ".facts");
    if (!f) return "";
    f << facts;
  }
  std::ofstream md(stem + ".md");
  if (!md) return "";
  md << "# Fuzz disagreement: " << failure.check << "\n\n"
     << "* case: " << failure.case_index << " (class "
     << ClassName(failure.cls) << ", run seed " << seed << ")\n"
     << "* shrunk: " << failure.shrunk_rule_count << " rules, "
     << (failure.shrunk_one_minimal ? "1-minimal" : "not verified minimal")
     << ", " << failure.shrink_oracle_calls << " oracle calls\n\n"
     << "## Diagnostic\n\n```\n" << failure.detail << "\n```\n\n"
     << "## Shrunk program (" << stem << ".dl)\n\n```\n" << program
     << "```\n\n## Shrunk facts (" << stem << ".facts)\n\n```\n" << facts
     << "```\n\n## Original program\n\n```\n" << failure.program
     << "```\n\n## Original facts\n\n```\n" << failure.facts << "```\n\n"
     << "Reproduce the whole run with:\n\n"
     << "    tools/unchained_fuzz --cases=" << failure.case_index + 1
     << " --seed=" << seed << "\n";
  return stem + ".md";
}

FuzzReport RunFuzz(const FuzzOptions& options) {
  FuzzReport report;
  ProgramGenerator generator(options.generator);
  OracleRunner runner(options.oracle);
  Shrinker shrinker(options.shrinker);

  const auto sweep_start = std::chrono::steady_clock::now();
  for (int i = 0; i < options.cases; ++i) {
    if (options.deadline_ms > 0) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - sweep_start)
              .count();
      if (elapsed >= options.deadline_ms) {
        report.deadline_hit = true;
        Log(options, "deadline: sweep stopped after " +
                         std::to_string(report.cases_run) + "/" +
                         std::to_string(options.cases) + " cases");
        break;
      }
    }
    const uint64_t case_seed = CaseSeed(options.seed, i);
    Rng rng(case_seed);
    const ProgramClass cls =
        options.classes[static_cast<size_t>(i) % options.classes.size()];
    const GeneratedCase c = generator.GenerateCase(cls, &rng);

    auto record_failure = [&](const std::string& check,
                              const std::string& detail,
                              const ShrinkOracle& oracle) {
      FuzzFailure failure;
      failure.case_index = i;
      failure.cls = cls;
      failure.check = check;
      failure.detail = detail;
      failure.program = c.program;
      failure.facts = c.facts;
      if (options.shrink) {
        ShrinkResult shrunk = shrinker.Shrink(c.program, c.facts, oracle);
        failure.shrunk = true;
        failure.shrunk_program = shrunk.program;
        failure.shrunk_facts = shrunk.facts;
        failure.shrunk_rule_count = shrunk.RuleCount();
        failure.shrink_oracle_calls = shrunk.oracle_calls;
        failure.shrunk_one_minimal = shrunk.one_minimal;
      }
      if (!options.artifacts_dir.empty()) {
        failure.artifact_path =
            WriteRepro(options.artifacts_dir, failure, options.seed);
      }
      Log(options, "FAIL case " + std::to_string(i) + " [" + check + "] " +
                       (failure.artifact_path.empty()
                            ? "(artifact not written)"
                            : "-> " + failure.artifact_path));
      report.failures.push_back(std::move(failure));
    };

    for (size_t pi = 0; pi < options.pairs.size(); ++pi) {
      const OraclePair pair = options.pairs[pi];
      const uint64_t salt = case_seed ^ (0x517cc1b727220a95ULL * (pi + 1));
      OracleVerdict verdict = runner.Run(pair, c.program, c.facts, salt);
      if (!verdict.applicable) continue;
      ++report.checks_by_name[PairName(pair)];
      if (!verdict.agreed) {
        record_failure(PairName(pair), verdict.detail,
                       [&runner, pair, salt](const std::string& prog,
                                             const std::string& facts) {
                         OracleVerdict v = runner.Run(pair, prog, facts, salt);
                         return v.applicable && !v.agreed;
                       });
      }
    }

    for (int mi = 0; mi < options.mutants_per_case; ++mi) {
      const Mutation m = static_cast<Mutation>(
          (i * options.mutants_per_case + mi) % kNumMutations);
      const uint64_t mseed =
          case_seed + 1000003ULL * (static_cast<uint64_t>(mi) + 1);
      const storage::StorageBackend backend = options.oracle.storage;
      MetamorphicOutcome outcome =
          CheckMutant(c.program, c.facts, m, mseed, backend);
      if (!outcome.applicable) continue;
      ++report.mutants_by_name[MutationName(m)];
      if (!outcome.agreed) {
        record_failure(std::string("metamorphic:") + MutationName(m),
                       outcome.detail,
                       [m, mseed, backend](const std::string& prog,
                                           const std::string& facts) {
                         MetamorphicOutcome o =
                             CheckMutant(prog, facts, m, mseed, backend);
                         return o.applicable && !o.agreed;
                       });
      }
    }

    ++report.cases_run;
    if (options.log != nullptr && (i + 1) % 200 == 0) {
      Log(options, "... " + std::to_string(i + 1) + "/" +
                       std::to_string(options.cases) + " cases, " +
                       std::to_string(report.failures.size()) +
                       " disagreements");
    }
  }
  return report;
}

}  // namespace fuzz
}  // namespace datalog
