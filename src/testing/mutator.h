#ifndef UNCHAINED_TESTING_MUTATOR_H_
#define UNCHAINED_TESTING_MUTATOR_H_

// Metamorphic mutations: answer-preserving program transformations. For
// every deterministic semantics this repo implements, each mutation below
// provably leaves the computed idb relations unchanged (modulo the
// returned predicate renaming) — so "evaluate original and mutant, diff"
// is an oracle that needs no second engine.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/result.h"
#include "base/rng.h"

namespace datalog {
namespace fuzz {

/// The mutation catalogue:
///  * kShuffleRules     — random permutation of the rule list.
///  * kShuffleLiterals  — random permutation of each rule body.
///  * kRenamePredicates — consistent fresh names for every idb predicate.
///  * kAddSubsumedRule  — append a copy of a random rule with one body
///                        literal duplicated (logically equivalent, so the
///                        added rule derives nothing new).
///  * kDuplicateRule    — append a verbatim copy of a random rule.
enum class Mutation {
  kShuffleRules,
  kShuffleLiterals,
  kRenamePredicates,
  kAddSubsumedRule,
  kDuplicateRule,
};

inline constexpr int kNumMutations = 5;

/// Short stable name ("shuffle-rules", ...).
const char* MutationName(Mutation m);

/// A mutated program plus the idb renaming that maps original predicate
/// names to mutated ones (identity — empty — except for
/// kRenamePredicates).
struct MutatedProgram {
  std::string program;
  std::vector<std::pair<std::string, std::string>> renames;

  /// The mutated spelling of original predicate `name`.
  std::string_view Renamed(std::string_view name) const;
};

/// Applies mutations to program text: parse, transform the AST, print.
/// Deterministic in the Rng state. Returns kInvalidProgram if the text
/// does not parse.
class MetamorphicMutator {
 public:
  Result<MutatedProgram> Apply(Mutation m, const std::string& program_text,
                               Rng* rng) const;
};

}  // namespace fuzz
}  // namespace datalog

#endif  // UNCHAINED_TESTING_MUTATOR_H_
