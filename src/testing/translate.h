#ifndef UNCHAINED_TESTING_TRANSLATE_H_
#define UNCHAINED_TESTING_TRANSLATE_H_

// Datalog¬ -> while/fixpoint translation, the constructive half of the
// Theorem 4.2 simulation the fuzzer uses as an oracle: a semi-positive
// Datalog¬ program becomes a fixpoint program (one cumulative relational-
// algebra assignment per rule inside a while-change loop) whose result
// coincides with the inflationary fixpoint — and with every other
// deterministic semantics, since on semi-positive programs they all agree.

#include "ast/ast.h"
#include "base/result.h"
#include "ra/catalog.h"
#include "while/while_lang.h"

namespace datalog {
namespace fuzz {

/// Compiles a semi-positive Datalog¬ program into an equivalent fixpoint
/// (all-cumulative while) program over the same catalog:
///
///   while change do { H_1 += E_1; ...; H_n += E_n }
///
/// where E_i algebraizes rule i's body — positive literals become joins
/// (selections for inline constants and repeated variables), negated
/// literals become anti-join differences, head constants are appended via
/// singleton products, and variables bound only negatively (or only in the
/// head) range over the active domain extended with the program constants,
/// matching the engines' adom(P, I) convention.
///
/// Running the result with RunWhile on an input I yields exactly the
/// inflationary fixpoint of the program on I, restricted to any predicate.
///
/// Returns kUnsupported for programs outside semi-positive Datalog¬
/// (multiple or negative heads, equality/⊥ literals, ∀ prefixes, invention
/// variables, idb negation).
Result<WhileProgram> DatalogToWhile(const Program& program,
                                    const Catalog& catalog);

}  // namespace fuzz
}  // namespace datalog

#endif  // UNCHAINED_TESTING_TRANSLATE_H_
