#include "testing/shrinker.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "store/fault.h"

namespace datalog {
namespace fuzz {
namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

/// Update-batch lines (`%~ +e1(0,1) -e2(3)`; see testing/oracle.h) get
/// finer-grained minimization than whole-line removal: batches merge and
/// individual update tokens drop.
bool IsUpdateLine(const std::string& line) {
  const size_t i = line.find_first_not_of(" \t");
  return i != std::string::npos && line.compare(i, 2, "%~") == 0;
}

std::vector<std::string> UpdateTokens(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = line.find("%~");
  if (i == std::string::npos) return tokens;
  i += 2;
  while (i < line.size()) {
    if (line[i] == ' ' || line[i] == '\t') {
      ++i;
      continue;
    }
    size_t end = i;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
    tokens.push_back(line.substr(i, end - i));
    i = end;
  }
  return tokens;
}

std::string MakeUpdateLine(const std::vector<std::string>& tokens) {
  std::string out = "%~";
  for (const std::string& t : tokens) {
    out += ' ';
    out += t;
  }
  return out;
}

/// Session-script lines (`%@ <sid> q|s|u ...`; see server/session.h) get
/// their own passes on top of whole-line removal: drop entire sessions,
/// merge two sessions into one client, and ddmin the tokens of `u` ops.
bool IsSessionLine(const std::string& line) {
  const size_t i = line.find_first_not_of(" \t");
  return i != std::string::npos && line.compare(i, 2, "%@") == 0;
}

/// The session id of a `%@` line, or -1 if it is not one / is malformed.
/// `sid_begin`/`sid_end` (optional) receive the digit span.
int SessionSid(const std::string& line, size_t* sid_begin = nullptr,
               size_t* sid_end = nullptr) {
  size_t i = line.find("%@");
  if (i == std::string::npos) return -1;
  i = line.find_first_not_of(" \t", i + 2);
  if (i == std::string::npos) return -1;
  size_t end = i;
  int sid = 0;
  while (end < line.size() && line[end] >= '0' && line[end] <= '9') {
    sid = sid * 10 + (line[end] - '0');
    ++end;
  }
  if (end == i) return -1;
  if (sid_begin != nullptr) *sid_begin = i;
  if (sid_end != nullptr) *sid_end = end;
  return sid;
}

std::string WithSessionSid(const std::string& line, int sid) {
  size_t begin = 0;
  size_t end = 0;
  if (SessionSid(line, &begin, &end) < 0) return line;
  return line.substr(0, begin) + std::to_string(sid) + line.substr(end);
}

/// Splits a session `u` op into its signed update tokens. Returns false
/// for non-`u` session lines; `prefix` receives everything up to and
/// including the `u` keyword.
bool SessionUpdateTokens(const std::string& line, std::string* prefix,
                         std::vector<std::string>* tokens) {
  size_t end = 0;
  if (SessionSid(line, nullptr, &end) < 0) return false;
  const size_t op = line.find_first_not_of(" \t", end);
  if (op == std::string::npos || line[op] != 'u') return false;
  if (op + 1 < line.size() && line[op + 1] != ' ' && line[op + 1] != '\t') {
    return false;
  }
  *prefix = line.substr(0, op + 1);
  tokens->clear();
  size_t i = op + 1;
  while (i < line.size()) {
    if (line[i] == ' ' || line[i] == '\t') {
      ++i;
      continue;
    }
    size_t tok_end = i;
    while (tok_end < line.size() && line[tok_end] != ' ' &&
           line[tok_end] != '\t') {
      ++tok_end;
    }
    tokens->push_back(line.substr(i, tok_end - i));
    i = tok_end;
  }
  return !tokens->empty();
}

std::string MakeSessionUpdateLine(const std::string& prefix,
                                  const std::vector<std::string>& tokens) {
  std::string out = prefix;
  for (const std::string& t : tokens) {
    out += ' ';
    out += t;
  }
  return out;
}

/// Durability lines (`%! crash=...`; see store/fault.h) get a dedicated
/// pass simplifying the crash schedule in place of whole-line removal.
bool IsDurabilityLine(const std::string& line) {
  const size_t i = line.find_first_not_of(" \t");
  return i != std::string::npos && line.compare(i, 2, "%!") == 0;
}

/// Distinct session ids among `lines`, in order of first appearance.
std::vector<int> SessionIds(const std::vector<std::string>& lines) {
  std::vector<int> sids;
  for (const std::string& line : lines) {
    if (!IsSessionLine(line)) continue;
    const int sid = SessionSid(line);
    if (sid < 0) continue;
    if (std::find(sids.begin(), sids.end(), sid) == sids.end()) {
      sids.push_back(sid);
    }
  }
  return sids;
}

/// Drives the two line lists through the oracle under the call budget.
class ShrinkDriver {
 public:
  ShrinkDriver(const Shrinker::Options& options, const ShrinkOracle& oracle)
      : options_(options), oracle_(oracle) {}

  int calls() const { return calls_; }
  bool budget_exhausted() const { return budget_exhausted_; }

  bool StillFails(const std::vector<std::string>& rules,
                  const std::vector<std::string>& facts) {
    if (calls_ >= options_.max_oracle_calls) {
      budget_exhausted_ = true;
      return false;
    }
    ++calls_;
    return oracle_(JoinLines(rules), JoinLines(facts));
  }

  /// One ddmin sweep over `primary` with `other` held fixed: try removing
  /// chunks, halving the chunk size until single-line removals stabilize.
  /// `primary_first` selects the argument order for the oracle. Returns
  /// true if anything was removed.
  bool DdminPass(std::vector<std::string>* primary,
                 const std::vector<std::string>& other, bool primary_is_rules) {
    bool any_removed = false;
    size_t chunk = std::max<size_t>(1, (primary->size() + 1) / 2);
    while (!primary->empty() && !budget_exhausted_) {
      bool removed_at_this_chunk = false;
      for (size_t start = 0; start < primary->size() && !budget_exhausted_;) {
        std::vector<std::string> candidate;
        candidate.reserve(primary->size());
        const size_t end = std::min(primary->size(), start + chunk);
        candidate.insert(candidate.end(), primary->begin(),
                         primary->begin() + static_cast<ptrdiff_t>(start));
        candidate.insert(candidate.end(),
                         primary->begin() + static_cast<ptrdiff_t>(end),
                         primary->end());
        const bool fails = primary_is_rules ? StillFails(candidate, other)
                                            : StillFails(other, candidate);
        if (fails) {
          *primary = std::move(candidate);
          removed_at_this_chunk = any_removed = true;
          // Retry from the same position: the next chunk slid into it.
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) {
        if (!removed_at_this_chunk) break;
        // A single-line pass removed something; run another to confirm
        // local minimality.
        continue;
      }
      chunk = std::max<size_t>(1, chunk / 2);
    }
    return any_removed;
  }

  /// Minimizes the update-batch lines among `facts` with `rules` held
  /// fixed: (a) merge each batch into the previous one (fewer batches,
  /// same update sequence), (b) ddmin the tokens within each batch. Line
  /// removal itself is the fact pass's job; token passes keep at least
  /// one token per line. Returns true if anything changed.
  bool UpdateMinimizePass(const std::vector<std::string>& rules,
                          std::vector<std::string>* facts) {
    bool any_changed = false;
    // Merge pass: append batch j's tokens to the previous batch i.
    for (size_t i = 0; i < facts->size() && !budget_exhausted_;) {
      if (!IsUpdateLine((*facts)[i])) {
        ++i;
        continue;
      }
      size_t j = i + 1;
      while (j < facts->size() && !IsUpdateLine((*facts)[j])) ++j;
      if (j >= facts->size()) break;
      std::vector<std::string> merged = UpdateTokens((*facts)[i]);
      const std::vector<std::string> next = UpdateTokens((*facts)[j]);
      merged.insert(merged.end(), next.begin(), next.end());
      std::vector<std::string> candidate = *facts;
      candidate[i] = MakeUpdateLine(merged);
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(j));
      if (StillFails(rules, candidate)) {
        *facts = std::move(candidate);
        any_changed = true;
        // Stay on i: the next batch slid into merging range.
      } else {
        i = j;
      }
    }
    // Token ddmin within each surviving update line.
    for (size_t i = 0; i < facts->size() && !budget_exhausted_; ++i) {
      if (!IsUpdateLine((*facts)[i])) continue;
      std::vector<std::string> tokens = UpdateTokens((*facts)[i]);
      size_t chunk = std::max<size_t>(1, (tokens.size() + 1) / 2);
      while (tokens.size() > 1 && !budget_exhausted_) {
        bool removed_at_this_chunk = false;
        for (size_t start = 0; start < tokens.size() && !budget_exhausted_;) {
          const size_t end = std::min(tokens.size(), start + chunk);
          if (end - start >= tokens.size()) {
            // Dropping every token would empty the line — whole-line
            // removal belongs to the fact pass.
            start += chunk;
            continue;
          }
          std::vector<std::string> kept(
              tokens.begin(), tokens.begin() + static_cast<ptrdiff_t>(start));
          kept.insert(kept.end(),
                      tokens.begin() + static_cast<ptrdiff_t>(end),
                      tokens.end());
          std::vector<std::string> candidate = *facts;
          candidate[i] = MakeUpdateLine(kept);
          if (StillFails(rules, candidate)) {
            tokens = std::move(kept);
            (*facts)[i] = MakeUpdateLine(tokens);
            removed_at_this_chunk = any_changed = true;
          } else {
            start += chunk;
          }
        }
        if (chunk == 1) {
          if (!removed_at_this_chunk) break;
          continue;
        }
        chunk = std::max<size_t>(1, chunk / 2);
      }
    }
    return any_changed;
  }

  /// Minimizes the session-script lines among `facts` with `rules` held
  /// fixed: (a) drop whole sessions (every `%@` line of one sid at once —
  /// removes a client the single-line pass would only erode), (b) merge a
  /// session into its predecessor by renaming its sid (fewer concurrent
  /// clients, same ops), (c) ddmin the update tokens of each `u` op. Like
  /// UpdateMinimizePass, token passes keep at least one token per line:
  /// whole-line removal is the fact pass's job. Returns true if anything
  /// changed.
  bool SessionMinimizePass(const std::vector<std::string>& rules,
                           std::vector<std::string>* facts) {
    bool any_changed = false;
    // (a) Whole-session drops, smallest surviving script first.
    for (size_t s = 0; !budget_exhausted_;) {
      const std::vector<int> sids = SessionIds(*facts);
      if (s >= sids.size()) break;
      std::vector<std::string> candidate;
      candidate.reserve(facts->size());
      for (const std::string& line : *facts) {
        if (IsSessionLine(line) && SessionSid(line) == sids[s]) continue;
        candidate.push_back(line);
      }
      if (StillFails(rules, candidate)) {
        *facts = std::move(candidate);
        any_changed = true;
        // Stay at s: the next sid slid into this slot.
      } else {
        ++s;
      }
    }
    // (b) Merge each session into the previous one (rename sid j -> i).
    // The renamed ops keep their schedule positions; only the client
    // attribution changes, so a repro that needs K concurrent clients
    // keeps K and one that does not loses a client.
    for (size_t s = 1; !budget_exhausted_;) {
      const std::vector<int> sids = SessionIds(*facts);
      if (s >= sids.size()) break;
      std::vector<std::string> candidate = *facts;
      for (std::string& line : candidate) {
        if (IsSessionLine(line) && SessionSid(line) == sids[s]) {
          line = WithSessionSid(line, sids[s - 1]);
        }
      }
      if (StillFails(rules, candidate)) {
        *facts = std::move(candidate);
        any_changed = true;
        // Stay at s: the next sid slid into this slot.
      } else {
        ++s;
      }
    }
    // (c) Token ddmin within each surviving session `u` op.
    for (size_t i = 0; i < facts->size() && !budget_exhausted_; ++i) {
      std::string prefix;
      std::vector<std::string> tokens;
      if (!SessionUpdateTokens((*facts)[i], &prefix, &tokens)) continue;
      size_t chunk = std::max<size_t>(1, (tokens.size() + 1) / 2);
      while (tokens.size() > 1 && !budget_exhausted_) {
        bool removed_at_this_chunk = false;
        for (size_t start = 0; start < tokens.size() && !budget_exhausted_;) {
          const size_t end = std::min(tokens.size(), start + chunk);
          if (end - start >= tokens.size()) {
            // Dropping every token would leave a bare `u` op — removing
            // the whole line belongs to the fact pass.
            start += chunk;
            continue;
          }
          std::vector<std::string> kept(
              tokens.begin(), tokens.begin() + static_cast<ptrdiff_t>(start));
          kept.insert(kept.end(),
                      tokens.begin() + static_cast<ptrdiff_t>(end),
                      tokens.end());
          std::vector<std::string> candidate = *facts;
          candidate[i] = MakeSessionUpdateLine(prefix, kept);
          if (StillFails(rules, candidate)) {
            tokens = std::move(kept);
            (*facts)[i] = MakeSessionUpdateLine(prefix, tokens);
            removed_at_this_chunk = any_changed = true;
          } else {
            start += chunk;
          }
        }
        if (chunk == 1) {
          if (!removed_at_this_chunk) break;
          continue;
        }
        chunk = std::max<size_t>(1, chunk / 2);
      }
    }
    return any_changed;
  }

  /// Minimizes the `%!` durability line among `facts` (store/fault.h)
  /// with `rules` held fixed: drop the torn-tail and bit-flip damage,
  /// halve `crash` toward 1 (the smallest hit index that still fails
  /// names the culprit crash point), and reset the sync/compaction
  /// cadences to their quiet defaults. Whole-line removal stays the fact
  /// pass's job. Returns true if anything changed.
  bool DurabilityMinimizePass(const std::vector<std::string>& rules,
                              std::vector<std::string>* facts) {
    bool any_changed = false;
    for (size_t i = 0; i < facts->size() && !budget_exhausted_; ++i) {
      if (!IsDurabilityLine((*facts)[i])) continue;
      store::DurabilitySpec spec;
      bool found = false;
      if (!store::ParseDurabilitySpec((*facts)[i], &spec, &found) || !found) {
        continue;  // Mangled by a blind edit; leave it to line removal.
      }
      auto try_spec = [&](const store::DurabilitySpec& simpler) {
        std::vector<std::string> candidate = *facts;
        candidate[i] = store::FormatDurabilitySpec(simpler);
        if (!StillFails(rules, candidate)) return false;
        spec = simpler;
        (*facts)[i] = store::FormatDurabilitySpec(spec);
        any_changed = true;
        return true;
      };
      if (spec.torn_keep != -1 && !budget_exhausted_) {
        store::DurabilitySpec s = spec;
        s.torn_keep = -1;
        try_spec(s);
      }
      if (spec.flip_bit != -1 && !budget_exhausted_) {
        store::DurabilitySpec s = spec;
        s.flip_bit = -1;
        try_spec(s);
      }
      while (spec.crash_at > 1 && !budget_exhausted_) {
        store::DurabilitySpec s = spec;
        s.crash_at = spec.crash_at / 2;
        if (!try_spec(s)) break;
      }
      if (spec.snapshot_every != 0 && !budget_exhausted_) {
        store::DurabilitySpec s = spec;
        s.snapshot_every = 0;
        try_spec(s);
      }
      if (spec.sync_every != 1 && !budget_exhausted_) {
        store::DurabilitySpec s = spec;
        s.sync_every = 1;
        try_spec(s);
      }
    }
    return any_changed;
  }

 private:
  const Shrinker::Options& options_;
  const ShrinkOracle& oracle_;
  int calls_ = 0;
  bool budget_exhausted_ = false;
};

}  // namespace

int ShrinkResult::RuleCount() const {
  return static_cast<int>(SplitLines(program).size());
}

ShrinkResult Shrinker::Shrink(const std::string& program,
                              const std::string& facts,
                              const ShrinkOracle& oracle) const {
  std::vector<std::string> rules = SplitLines(program);
  std::vector<std::string> fact_lines = SplitLines(facts);
  ShrinkDriver driver(options_, oracle);

  ShrinkResult result;
  if (!driver.StillFails(rules, fact_lines)) {
    // The input does not fail (or the budget is zero): nothing to shrink.
    result.program = JoinLines(rules);
    result.facts = JoinLines(fact_lines);
    result.oracle_calls = driver.calls();
    result.budget_exhausted = driver.budget_exhausted();
    return result;
  }

  // Alternate rule, fact, update, session and durability passes until
  // none removes anything: rules shrink the search space for facts and
  // vice versa (a dropped rule often strands facts that can then go too),
  // and a merged or thinned update batch, session or crash schedule can
  // unlock further fact-line drops.
  bool changed = true;
  while (changed && !driver.budget_exhausted()) {
    changed = driver.DdminPass(&rules, fact_lines, /*primary_is_rules=*/true);
    changed |= driver.DdminPass(&fact_lines, rules,
                                /*primary_is_rules=*/false);
    changed |= driver.UpdateMinimizePass(rules, &fact_lines);
    changed |= driver.SessionMinimizePass(rules, &fact_lines);
    changed |= driver.DurabilityMinimizePass(rules, &fact_lines);
  }

  result.program = JoinLines(rules);
  result.facts = JoinLines(fact_lines);
  result.oracle_calls = driver.calls();
  result.budget_exhausted = driver.budget_exhausted();
  // The loop above exits only after full single-granularity passes over
  // both lists removed nothing (or the budget ran out) — that is exactly
  // local 1-minimality.
  result.one_minimal = !driver.budget_exhausted();
  return result;
}

}  // namespace fuzz
}  // namespace datalog
