#ifndef UNCHAINED_TESTING_GENERATOR_H_
#define UNCHAINED_TESTING_GENERATOR_H_

// Random-program generation for the differential / metamorphic fuzzing
// harness (see docs/testing.md). Grown out of tests/random_programs.h:
// that header now re-exports these generators, so the ad-hoc test sweeps
// and the fuzzer draw from one implementation.
//
// Every generated program is *safe* (head variables occur in a positive
// body literal; negated literals use only positively bound variables) and
// round-trips exactly through Parser -> Printer -> Parser: the emitted
// text is byte-identical to ProgramToString of its parse.

#include <string>
#include <string_view>

#include "base/rng.h"

namespace datalog {
namespace fuzz {

/// The classes of programs the generator can emit, keyed to the oracle
/// pairs they feed (the paper's equivalence theorems; docs/testing.md):
///
///  * kPositive     — negation-free Datalog. Exercises naive vs semi-naive
///                    (Section 3.1) and the magic-sets rewrite.
///  * kSemiPositive — Datalog¬ with negation on edb predicates only. All
///                    deterministic semantics provably coincide, and the
///                    programs translate to the fixpoint (while) dialect.
///  * kStratified   — Datalog¬ with idb negation, stratified by
///                    construction (layered idb predicates). Exercises
///                    well-founded == stratified on stratified programs.
///  * kTotal        — semi-positive shapes enriched with inline constants
///                    and repeated variables; the well-founded model is
///                    provably total, so every engine pair applies.
enum class ProgramClass { kPositive, kSemiPositive, kStratified, kTotal };

inline constexpr int kNumProgramClasses = 4;

/// Short stable name ("positive", "semi-positive", ...), used by the CLI
/// and in artifact files.
const char* ClassName(ProgramClass cls);

/// Inverse of ClassName; returns false on an unknown name.
bool ClassFromName(std::string_view name, ProgramClass* out);

/// Knobs for program/instance shapes. Defaults match the historical
/// tests/random_programs.h sweep (2-4 rules, bodies of 1-3 atoms, domain
/// {0..4}, 8 e1 facts + 3 e2 facts).
struct GeneratorOptions {
  int min_rules = 2;
  /// Rules per program: min_rules + U[0, extra_rules].
  int extra_rules = 2;
  /// Positive body atoms per rule: 1 + U[0, max_extra_body_atoms].
  int max_extra_body_atoms = 2;
  /// Probability of attaching a negated literal to a rule body (classes
  /// with negation only).
  double negation_prob = 0.5;
  /// Instance values are drawn from [0, num_values).
  int num_values = 5;
  int e1_facts = 8;
  int e2_facts = 3;
  /// kTotal only: per-argument probability of an inline constant.
  double constant_prob = 0.2;
  /// Update batches per case: 1 + U[0, max_update_batches), each with
  /// 1 + U[0, max_updates_per_batch) signed edb updates. Zero disables
  /// update generation (no `%~` lines; pair #9 reads as inapplicable).
  int max_update_batches = 4;
  int max_updates_per_batch = 4;
  /// Concurrent sessions per case: 1 + U[0, max_sessions), each with
  /// 1 + U[0, max_session_ops) script ops (`%@` lines, server/session.h).
  /// Zero disables session generation (pair #10 reads as inapplicable).
  int max_sessions = 3;
  int max_session_ops = 4;
  /// Whether each case carries a `%!` durability line (store/fault.h):
  /// a seeded crash schedule plus fsync/compaction cadences. False
  /// disables it (pair #11 then reads as inapplicable).
  bool durability_specs = true;
};

/// A generated (program, instance) pair.
struct GeneratedCase {
  ProgramClass cls = ProgramClass::kSemiPositive;
  std::string program;
  std::string facts;
};

/// Emits random programs over the fixed schema edb {e1/2, e2/1} and idb
/// {p1/1, p2/2, p3/2}. Generation is a pure function of the Rng state:
/// identical seeds yield identical cases.
class ProgramGenerator {
 public:
  ProgramGenerator() = default;
  explicit ProgramGenerator(const GeneratorOptions& options)
      : options_(options) {}

  const GeneratorOptions& options() const { return options_; }

  /// A random program of the given class.
  std::string GenerateProgram(ProgramClass cls, Rng* rng) const;

  /// A random instance over e1/2 and e2/1 using the option defaults.
  std::string GenerateFacts(Rng* rng) const;

  /// A random instance with explicit sizes (legacy RandomFacts shape).
  std::string GenerateFacts(Rng* rng, int num_values, int e1_facts,
                            int e2_facts) const;

  /// Random `%~ +e1(0,1) -e2(3)` update-batch lines over the edb schema —
  /// one line per batch. The parser skips them as `%` comments; oracle
  /// pair #9 replays them against an IncrementalView.
  std::string GenerateUpdates(Rng* rng) const;

  /// Random `%@ <sid> q|s|u ...` session-script lines (server/session.h):
  /// a multi-client mix of predicate queries, full-snapshot queries and
  /// update submissions. Comment-invisible to the parser; oracle pair #10
  /// schedules them against a concurrent Server.
  std::string GenerateSessions(Rng* rng) const;

  /// One random `%! crash=... torn=... flip=... sync=... snap=...`
  /// durability line (store/fault.h), canonical per FormatDurabilitySpec.
  /// Comment-invisible to the parser; oracle pair #11 runs the session
  /// script under its crash schedule. Empty when durability_specs is off.
  std::string GenerateDurability(Rng* rng) const;

  /// Program plus instance (including update-batch lines) in one call.
  GeneratedCase GenerateCase(ProgramClass cls, Rng* rng) const;

 private:
  GeneratorOptions options_;
};

}  // namespace fuzz
}  // namespace datalog

#endif  // UNCHAINED_TESTING_GENERATOR_H_
