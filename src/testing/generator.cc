#include "testing/generator.h"

#include <cstddef>
#include <string>
#include <vector>

#include "store/fault.h"

namespace datalog {
namespace fuzz {
namespace {

// The fixed generation schema. Predicate tables are split so each class
// can restrict where a predicate may occur (positively, negatively, or as
// a head) without re-deriving arities at every site.
struct PredSpec {
  const char* name;
  int arity;
};

constexpr PredSpec kEdb[] = {{"e1", 2}, {"e2", 1}};
constexpr PredSpec kIdb[] = {{"p1", 1}, {"p2", 2}, {"p3", 2}};
constexpr const char* kVars[] = {"X", "Y", "Z", "W"};
constexpr size_t kNumVars = 4;

/// One argument position: a variable name, or an inline integer constant.
std::string Argument(const std::vector<const char*>& bound, bool allow_const,
                     const GeneratorOptions& options, Rng* rng) {
  if (allow_const && rng->Chance(options.constant_prob)) {
    return std::to_string(rng->UniformInt(options.num_values));
  }
  return bound[rng->Uniform(bound.size())];
}

/// Appends one atom `name(a1, ..., ak)` over already-bound variables
/// (and, when `allow_const`, inline constants).
void AppendBoundAtom(const PredSpec& pred,
                     const std::vector<const char*>& bound, bool allow_const,
                     const GeneratorOptions& options, Rng* rng,
                     std::string* out) {
  *out += pred.name;
  *out += "(";
  for (int a = 0; a < pred.arity; ++a) {
    if (a > 0) *out += ", ";
    *out += Argument(bound, allow_const, options, rng);
  }
  *out += ")";
}

/// Appends one positive atom with fresh-or-reused variables, recording the
/// variables it binds.
void AppendPositiveAtom(const PredSpec& pred, bool allow_const,
                        const GeneratorOptions& options, Rng* rng,
                        std::vector<const char*>* bound, std::string* out) {
  *out += pred.name;
  *out += "(";
  bool bound_any = false;
  for (int a = 0; a < pred.arity; ++a) {
    if (a > 0) *out += ", ";
    // The last argument falls back to a variable if the atom would
    // otherwise bind nothing (an all-constant atom is legal but useless
    // as the only positive literal of a rule).
    bool want_const = allow_const && rng->Chance(options.constant_prob) &&
                      (bound_any || a + 1 < pred.arity || !bound->empty());
    if (want_const) {
      *out += std::to_string(rng->UniformInt(options.num_values));
    } else {
      const char* v = kVars[rng->Uniform(kNumVars)];
      *out += v;
      bound->push_back(v);
      bound_any = true;
    }
  }
  *out += ")";
}

/// One rule: positive atoms drawn from `pos`, optional negated atoms drawn
/// from `neg`, head drawn from `heads`. All negative and head arguments
/// use positively bound variables (safety), plus constants when allowed.
std::string GenerateRule(const std::vector<PredSpec>& pos,
                         const std::vector<PredSpec>& neg,
                         const std::vector<PredSpec>& heads, bool allow_const,
                         const GeneratorOptions& options, Rng* rng) {
  std::string body;
  std::vector<const char*> bound;
  const int num_pos = 1 + rng->UniformInt(options.max_extra_body_atoms + 1);
  for (int i = 0; i < num_pos; ++i) {
    if (!body.empty()) body += ", ";
    AppendPositiveAtom(pos[rng->Uniform(pos.size())], allow_const, options,
                       rng, &bound, &body);
  }
  if (!neg.empty() && rng->Chance(options.negation_prob)) {
    body += ", !";
    AppendBoundAtom(neg[rng->Uniform(neg.size())], bound, allow_const,
                    options, rng, &body);
  }
  std::string head;
  AppendBoundAtom(heads[rng->Uniform(heads.size())], bound, allow_const,
                  options, rng, &head);
  return head + " :- " + body + ".\n";
}

}  // namespace

const char* ClassName(ProgramClass cls) {
  switch (cls) {
    case ProgramClass::kPositive:
      return "positive";
    case ProgramClass::kSemiPositive:
      return "semi-positive";
    case ProgramClass::kStratified:
      return "stratified";
    case ProgramClass::kTotal:
      return "total";
  }
  return "unknown";
}

bool ClassFromName(std::string_view name, ProgramClass* out) {
  for (int i = 0; i < kNumProgramClasses; ++i) {
    ProgramClass cls = static_cast<ProgramClass>(i);
    if (name == ClassName(cls)) {
      *out = cls;
      return true;
    }
  }
  return false;
}

std::string ProgramGenerator::GenerateProgram(ProgramClass cls,
                                              Rng* rng) const {
  const std::vector<PredSpec> edb(std::begin(kEdb), std::end(kEdb));
  const std::vector<PredSpec> idb(std::begin(kIdb), std::end(kIdb));
  std::vector<PredSpec> all = edb;
  all.insert(all.end(), idb.begin(), idb.end());
  // The stratified class layers the idb: {p1, p2} form the lower stratum
  // (no mention of p3 at all), p3 the upper one (may negate p1/p2). Every
  // program of the class is stratifiable by construction.
  const std::vector<PredSpec> lower_idb = {kIdb[0], kIdb[1]};
  std::vector<PredSpec> lower_pos = edb;
  lower_pos.insert(lower_pos.end(), lower_idb.begin(), lower_idb.end());
  const std::vector<PredSpec> upper_heads = {kIdb[2]};

  std::string program;
  const int num_rules =
      options_.min_rules + rng->UniformInt(options_.extra_rules + 1);
  for (int r = 0; r < num_rules; ++r) {
    switch (cls) {
      case ProgramClass::kPositive:
        program += GenerateRule(all, /*neg=*/{}, idb, /*allow_const=*/false,
                                options_, rng);
        break;
      case ProgramClass::kSemiPositive:
        program += GenerateRule(all, edb, idb, /*allow_const=*/false,
                                options_, rng);
        break;
      case ProgramClass::kStratified:
        if (rng->Chance(0.5)) {
          program += GenerateRule(lower_pos, edb, lower_idb,
                                  /*allow_const=*/false, options_, rng);
        } else {
          program += GenerateRule(all, lower_pos, upper_heads,
                                  /*allow_const=*/false, options_, rng);
        }
        break;
      case ProgramClass::kTotal:
        program += GenerateRule(all, edb, idb, /*allow_const=*/true,
                                options_, rng);
        break;
    }
  }
  return program;
}

std::string ProgramGenerator::GenerateFacts(Rng* rng) const {
  return GenerateFacts(rng, options_.num_values, options_.e1_facts,
                       options_.e2_facts);
}

std::string ProgramGenerator::GenerateFacts(Rng* rng, int num_values,
                                            int e1_facts,
                                            int e2_facts) const {
  std::string facts;
  for (int i = 0; i < e1_facts; ++i) {
    facts += "e1(" + std::to_string(rng->UniformInt(num_values)) + ", " +
             std::to_string(rng->UniformInt(num_values)) + ").\n";
  }
  for (int i = 0; i < e2_facts; ++i) {
    facts += "e2(" + std::to_string(rng->UniformInt(num_values)) + ").\n";
  }
  return facts;
}

std::string ProgramGenerator::GenerateUpdates(Rng* rng) const {
  if (options_.max_update_batches <= 0 ||
      options_.max_updates_per_batch <= 0) {
    return "";
  }
  std::string out;
  const int batches = 1 + rng->UniformInt(options_.max_update_batches);
  for (int b = 0; b < batches; ++b) {
    out += "%~";
    const int updates = 1 + rng->UniformInt(options_.max_updates_per_batch);
    for (int u = 0; u < updates; ++u) {
      // Inserts lean positive so maintenance exercises growth and decay;
      // retract targets are drawn from the same small domain as the
      // initial facts, so they frequently hit live tuples. No spaces
      // inside a token: the shrinker minimizes update lines
      // token-by-token on whitespace.
      out += rng->Chance(0.6) ? " +" : " -";
      if (rng->Chance(0.7)) {
        out += "e1(" + std::to_string(rng->UniformInt(options_.num_values)) +
               "," + std::to_string(rng->UniformInt(options_.num_values)) +
               ")";
      } else {
        out += "e2(" + std::to_string(rng->UniformInt(options_.num_values)) +
               ")";
      }
    }
    out += "\n";
  }
  return out;
}

std::string ProgramGenerator::GenerateSessions(Rng* rng) const {
  if (options_.max_sessions <= 0 || options_.max_session_ops <= 0) {
    return "";
  }
  std::string out;
  // Both edb and idb predicates are queryable: idb reads are the ones a
  // torn publish corrupts (derived facts lag the epoch), edb reads pin
  // down the base/view boundary.
  static const char* const kPreds[] = {"e1", "e2", "p1", "p2", "p3"};
  const int sessions = 1 + rng->UniformInt(options_.max_sessions);
  for (int s = 0; s < sessions; ++s) {
    const int num_ops = 1 + rng->UniformInt(options_.max_session_ops);
    for (int o = 0; o < num_ops; ++o) {
      out += "%@ " + std::to_string(s) + " ";
      const double roll = static_cast<double>(rng->UniformInt(100)) / 100.0;
      if (roll < 0.45) {
        out += "q ";
        out += kPreds[rng->UniformInt(5)];
      } else if (roll < 0.55) {
        out += "s";
      } else {
        // An update batch of 1-3 tokens, same token shapes as
        // GenerateUpdates so the session-minimization shrinker pass can
        // ddmin them on whitespace.
        out += "u";
        const int updates = 1 + rng->UniformInt(3);
        for (int u = 0; u < updates; ++u) {
          out += rng->Chance(0.6) ? " +" : " -";
          if (rng->Chance(0.7)) {
            out += "e1(" +
                   std::to_string(rng->UniformInt(options_.num_values)) +
                   "," +
                   std::to_string(rng->UniformInt(options_.num_values)) +
                   ")";
          } else {
            out += "e2(" +
                   std::to_string(rng->UniformInt(options_.num_values)) +
                   ")";
          }
        }
      }
      out += "\n";
    }
  }
  return out;
}

std::string ProgramGenerator::GenerateDurability(Rng* rng) const {
  if (!options_.durability_specs) return "";
  store::DurabilitySpec spec;
  // Mostly crash early in the hit sequence (a handful of commits yields
  // only a few crash points each); sometimes never, covering the clean
  // shutdown-and-recover path.
  if (rng->Chance(0.8)) spec.crash_at = 1 + rng->UniformInt(8);
  // Torn tails and bit flips ride on roughly half the crashes each — the
  // WAL header is 8 bytes, so small torn_keep values cut mid-header and
  // larger ones cut mid-payload.
  if (rng->Chance(0.5)) spec.torn_keep = rng->UniformInt(24);
  if (rng->Chance(0.5)) spec.flip_bit = rng->UniformInt(256);
  spec.sync_every = rng->UniformInt(4);      // 0 = never fsync.
  spec.snapshot_every = rng->UniformInt(4);  // 0 = never compact.
  return store::FormatDurabilitySpec(spec) + "\n";
}

GeneratedCase ProgramGenerator::GenerateCase(ProgramClass cls,
                                             Rng* rng) const {
  GeneratedCase c;
  c.cls = cls;
  c.program = GenerateProgram(cls, rng);
  // Each new line kind is appended *after* every older one: earlier draws
  // for a given seed are unchanged, so pre-PR-9 cases replay as before
  // with sessions tacked on, and pre-PR-10 cases with the durability line
  // tacked on after those.
  c.facts = GenerateFacts(rng) + GenerateUpdates(rng) +
            GenerateSessions(rng) + GenerateDurability(rng);
  return c;
}

}  // namespace fuzz
}  // namespace datalog
