#include "testing/mutator.h"

#include <utility>

#include "ast/ast.h"
#include "ast/parser.h"
#include "ast/printer.h"
#include "base/symbols.h"
#include "ra/catalog.h"

namespace datalog {
namespace fuzz {
namespace {

/// Fisher-Yates driven by the harness Rng (std::shuffle is not
/// specified to be stable across standard libraries).
template <typename T>
void Shuffle(std::vector<T>* items, Rng* rng) {
  for (size_t i = items->size(); i > 1; --i) {
    std::swap((*items)[i - 1], (*items)[rng->Uniform(i)]);
  }
}

}  // namespace

const char* MutationName(Mutation m) {
  switch (m) {
    case Mutation::kShuffleRules:
      return "shuffle-rules";
    case Mutation::kShuffleLiterals:
      return "shuffle-literals";
    case Mutation::kRenamePredicates:
      return "rename-predicates";
    case Mutation::kAddSubsumedRule:
      return "add-subsumed-rule";
    case Mutation::kDuplicateRule:
      return "duplicate-rule";
  }
  return "unknown";
}

std::string_view MutatedProgram::Renamed(std::string_view name) const {
  for (const auto& [from, to] : renames) {
    if (from == name) return to;
  }
  return name;
}

Result<MutatedProgram> MetamorphicMutator::Apply(
    Mutation m, const std::string& program_text, Rng* rng) const {
  Catalog catalog;
  SymbolTable symbols;
  Result<Program> parsed = ParseProgram(program_text, &catalog, &symbols);
  if (!parsed.ok()) return parsed.status();
  Program program = std::move(parsed).value();

  MutatedProgram out;
  switch (m) {
    case Mutation::kShuffleRules:
      Shuffle(&program.rules, rng);
      break;

    case Mutation::kShuffleLiterals:
      for (Rule& rule : program.rules) Shuffle(&rule.body, rng);
      break;

    case Mutation::kRenamePredicates: {
      // Rebuild the catalog with fresh idb spellings, declared in the same
      // order: Declare assigns dense ids, so every PredId of the parsed
      // program stays valid against the renamed catalog.
      Catalog renamed;
      for (PredId p = 0; p < catalog.size(); ++p) {
        std::string name = catalog.NameOf(p);
        if (program.IsIdb(p)) {
          std::string fresh = name + "_m";
          out.renames.emplace_back(name, fresh);
          name = std::move(fresh);
        }
        Result<PredId> id = renamed.Declare(name, catalog.ArityOf(p));
        if (!id.ok() || *id != p) {
          return Status::Internal("predicate renaming lost id parity");
        }
      }
      out.program = ProgramToString(program, renamed, symbols);
      return out;
    }

    case Mutation::kAddSubsumedRule: {
      // Copy a random rule and duplicate one of its body literals — the
      // copy is logically equivalent to its source, so appending it
      // changes no semantics.
      std::vector<size_t> candidates;
      for (size_t i = 0; i < program.rules.size(); ++i) {
        if (!program.rules[i].body.empty()) candidates.push_back(i);
      }
      if (!candidates.empty()) {
        Rule copy = program.rules[candidates[rng->Uniform(candidates.size())]];
        copy.body.push_back(copy.body[rng->Uniform(copy.body.size())]);
        program.rules.push_back(std::move(copy));
      }
      break;
    }

    case Mutation::kDuplicateRule:
      if (!program.rules.empty()) {
        program.rules.push_back(
            program.rules[rng->Uniform(program.rules.size())]);
      }
      break;
  }
  program.RecomputeSchema();
  out.program = ProgramToString(program, catalog, symbols);
  return out;
}

}  // namespace fuzz
}  // namespace datalog
