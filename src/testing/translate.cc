#include "testing/translate.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/stratify.h"
#include "ra/expr.h"
#include "ra/relation.h"

namespace datalog {
namespace fuzz {
namespace {

/// A scanned atom with constants and repeated variables compiled into
/// selections, plus the first column of each distinct variable.
struct AtomExpr {
  RaExprPtr expr;
  /// (variable index, first column holding it), in column order.
  std::vector<std::pair<int, int>> var_cols;
};

AtomExpr BuildAtomExpr(const Atom& atom, const Catalog& catalog) {
  AtomExpr out;
  out.expr = ra::Scan(atom.pred, catalog.ArityOf(atom.pred));
  std::vector<SelCondition> conds;
  std::unordered_map<int, int> first;
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    const int col = static_cast<int>(i);
    if (t.is_var()) {
      auto [it, inserted] = first.emplace(t.var, col);
      if (inserted) {
        out.var_cols.emplace_back(t.var, col);
      } else {
        conds.push_back({SelOperand::Column(col),
                         SelOperand::Column(it->second), /*equal=*/true});
      }
    } else {
      conds.push_back({SelOperand::Column(col),
                       SelOperand::Const(t.constant), /*equal=*/true});
    }
  }
  if (!conds.empty()) out.expr = ra::Select(out.expr, std::move(conds));
  return out;
}

/// Algebraizes one rule body into (expr, var -> column) and appends the
/// head assignment to `stmts`.
Status TranslateRule(const Rule& rule, const Program& program,
                     const Catalog& catalog, std::vector<WhileStmt>* stmts) {
  if (rule.heads.size() != 1 ||
      rule.heads[0].kind != Literal::Kind::kRelational ||
      rule.heads[0].negative) {
    return Status::Unsupported(
        "while translation requires single positive relational heads");
  }
  if (!rule.universal_vars.empty() || !rule.InventionVars().empty()) {
    return Status::Unsupported(
        "while translation covers semi-positive Datalog¬ only");
  }

  RaExprPtr acc;
  int acc_arity = 0;
  std::unordered_map<int, int> var_col;

  // Positive relational literals, joined left to right.
  for (const Literal& lit : rule.body) {
    if (lit.kind != Literal::Kind::kRelational) {
      return Status::Unsupported(
          "while translation does not cover equality/⊥ literals");
    }
    if (lit.negative) continue;
    AtomExpr a = BuildAtomExpr(lit.atom, catalog);
    const int a_arity = a.expr->arity();
    if (acc == nullptr) {
      acc = a.expr;
      for (const auto& [v, col] : a.var_cols) var_col.emplace(v, col);
    } else {
      std::vector<std::pair<int, int>> eq;
      for (const auto& [v, col] : a.var_cols) {
        auto it = var_col.find(v);
        if (it != var_col.end()) eq.emplace_back(it->second, col);
      }
      acc = eq.empty() ? ra::Product(acc, a.expr)
                       : ra::Join(acc, a.expr, std::move(eq));
      for (const auto& [v, col] : a.var_cols) {
        var_col.emplace(v, acc_arity + col);
      }
    }
    acc_arity += a_arity;
  }

  // Variables not positively bound (negation-only or head-only) range over
  // the active domain plus the program constants — the adom(P, I) of the
  // engines. Collect them in index order for determinism.
  std::vector<Value> extra(program.constants.begin(),
                           program.constants.end());
  for (int v = 0; v < rule.num_vars; ++v) {
    if (var_col.count(v) > 0) continue;
    RaExprPtr dom = ra::Adom(1, extra);
    acc = acc == nullptr ? dom : ra::Product(acc, dom);
    var_col.emplace(v, acc_arity);
    ++acc_arity;
  }

  // Negated literals become anti-join differences: subtract the accumulated
  // tuples that match the negated relation.
  for (const Literal& lit : rule.body) {
    if (lit.kind != Literal::Kind::kRelational || !lit.negative) continue;
    if (program.IsIdb(lit.atom.pred)) {
      return Status::Unsupported(
          "while translation covers semi-positive Datalog¬ only "
          "(negation over idb predicate " + catalog.NameOf(lit.atom.pred) +
          ")");
    }
    if (acc == nullptr) {
      return Status::Unsupported(
          "while translation requires a nonempty body under negation");
    }
    AtomExpr a = BuildAtomExpr(lit.atom, catalog);
    std::vector<std::pair<int, int>> eq;
    for (const auto& [v, col] : a.var_cols) eq.emplace_back(var_col[v], col);
    RaExprPtr joined = eq.empty() ? ra::Product(acc, a.expr)
                                  : ra::Join(acc, a.expr, std::move(eq));
    std::vector<int> keep(static_cast<size_t>(acc_arity));
    for (int i = 0; i < acc_arity; ++i) keep[static_cast<size_t>(i)] = i;
    acc = ra::Diff(acc, ra::Project(joined, std::move(keep)));
  }

  // Head: project the bound columns; inline head constants are appended as
  // singleton products first.
  const Atom& head = rule.heads[0].atom;
  RaExprPtr expr = acc;
  std::vector<int> cols;
  int cur_arity = acc_arity;
  for (const Term& t : head.terms) {
    if (t.is_var()) {
      cols.push_back(var_col[t.var]);
    } else {
      Relation singleton(1);
      singleton.Insert({t.constant});
      RaExprPtr one = ra::ConstRel(std::move(singleton));
      expr = expr == nullptr ? one : ra::Product(expr, one);
      cols.push_back(cur_arity);
      ++cur_arity;
    }
  }
  if (expr == nullptr) {
    // Ground propositional rule, e.g. "delay." — assign the 0-ary
    // singleton directly.
    Relation unit(0);
    unit.Insert({});
    expr = ra::ConstRel(std::move(unit));
  } else if (head.terms.empty()) {
    // Propositional head over a nonempty body: project everything away
    // (nonempty body result => the 0-ary fact holds).
    cols.clear();
    expr = ra::Project(expr, cols);
  } else {
    expr = ra::Project(expr, std::move(cols));
  }
  stmts->push_back(AssignCumulative(head.pred, expr));
  return Status::OK();
}

}  // namespace

Result<WhileProgram> DatalogToWhile(const Program& program,
                                    const Catalog& catalog) {
  if (!IsSemiPositive(program)) {
    return Status::Unsupported(
        "while translation covers semi-positive Datalog¬ only");
  }
  std::vector<WhileStmt> body;
  for (const Rule& rule : program.rules) {
    DATALOG_RETURN_IF_ERROR(TranslateRule(rule, program, catalog, &body));
  }
  WhileProgram out;
  out.stmts.push_back(WhileChange(std::move(body)));
  return out;
}

}  // namespace fuzz
}  // namespace datalog
