#ifndef UNCHAINED_TESTING_SHRINKER_H_
#define UNCHAINED_TESTING_SHRINKER_H_

// Greedy delta-debugging minimizer for failing (program, instance) cases:
// removes rules and facts in shrinking chunks (classic ddmin scheduling)
// until the repro is locally 1-minimal — no single remaining rule or fact
// can be removed without losing the failure.
//
// Facts lines of the form `%~ +e1(0,1) -e2(3)` are update batches for the
// incremental-vs-scratch oracle (testing/oracle.h); those additionally get
// batch merging and per-token ddmin, so a failing update *sequence*
// minimizes down to the few updates that trip the maintenance bug.

#include <functional>
#include <string>

namespace datalog {
namespace fuzz {

/// The failure predicate: returns true iff the candidate (program, facts)
/// still exhibits the failure being minimized. Candidates may be
/// syntactically invalid (the shrinker removes lines blindly); oracles
/// must answer false for those, never crash.
using ShrinkOracle =
    std::function<bool(const std::string& program, const std::string& facts)>;

struct ShrinkResult {
  std::string program;
  std::string facts;
  /// Number of oracle invocations spent.
  int oracle_calls = 0;
  /// True when the result was verified locally 1-minimal: a full
  /// single-line-removal pass over rules and facts found nothing to drop.
  bool one_minimal = false;
  /// True when minimization stopped on the call budget instead.
  bool budget_exhausted = false;

  /// Non-empty lines remaining in `program` — the repro's rule count.
  int RuleCount() const;
};

class Shrinker {
 public:
  struct Options {
    /// Hard cap on oracle invocations; ddmin on an n-line case needs
    /// O(n^2) calls in the worst case, typically far fewer.
    int max_oracle_calls = 2000;
  };

  Shrinker() = default;
  explicit Shrinker(const Options& options) : options_(options) {}

  /// Minimizes a failing case. `oracle(program, facts)` must be true on
  /// entry (checked — if not, the input is returned unshrunk). Rules and
  /// facts are minimized at line granularity, alternating until a fixed
  /// point.
  ShrinkResult Shrink(const std::string& program, const std::string& facts,
                      const ShrinkOracle& oracle) const;

 private:
  Options options_;
};

}  // namespace fuzz
}  // namespace datalog

#endif  // UNCHAINED_TESTING_SHRINKER_H_
