#include "testing/oracle.h"

#include <stdlib.h>
#include <unistd.h>

#include <cctype>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "analysis/magic.h"
#include "base/rng.h"
#include "core/engine.h"
#include "dist/convergence.h"
#include "eval/incremental.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/scheduler.h"
#include "server/server.h"
#include "server/session.h"
#include "store/fault.h"
#include "store/recover.h"
#include "store/snapshotter.h"
#include "store/store.h"
#include "store/wal.h"
#include "testing/translate.h"
#include "while/while_lang.h"

namespace datalog {
namespace fuzz {
namespace {

/// One parsed case: engine + program + database, the unit every pair
/// evaluates in. Parse or validation failures mark the pair inapplicable —
/// the shrinker feeds syntactically broken candidates on purpose and they
/// must read as "not failing".
struct ParsedCase {
  Engine engine;
  std::optional<Program> program;
  std::optional<Instance> db;

  bool Init(const std::string& program_text, const std::string& facts_text) {
    Result<Program> p = engine.Parse(program_text);
    if (!p.ok()) return false;
    program.emplace(std::move(p).value());
    db.emplace(engine.NewInstance());
    return engine.AddFacts(facts_text, &*db).ok();
  }

  bool ValidDialect(Dialect dialect) const {
    return engine.Validate(*program, dialect).ok();
  }
};

std::string Truncate(std::string s, size_t limit = 600) {
  if (s.size() > limit) {
    s.resize(limit);
    s += " ...";
  }
  return s;
}

/// "lhs and rhs differ" diagnostic over canonical instance listings.
std::string DescribeDiff(const char* lhs_name, const Instance& lhs,
                         const char* rhs_name, const Instance& rhs,
                         const SymbolTable& symbols) {
  return std::string(lhs_name) + ":\n  " + Truncate(lhs.ToString(symbols)) +
         "\n" + rhs_name + ":\n  " + Truncate(rhs.ToString(symbols));
}

std::string DescribeRelDiff(const char* lhs_name, const Relation& lhs,
                            const char* rhs_name, const Relation& rhs,
                            const std::string& pred_name,
                            const SymbolTable& symbols) {
  auto render = [&](const Relation& rel) {
    std::string out;
    for (const Tuple& t : rel.Sorted()) {
      out += pred_name + "(";
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out += ", ";
        out += symbols.NameOf(t[i]);
      }
      out += ") ";
    }
    return Truncate(std::move(out));
  };
  return std::string(lhs_name) + " " + pred_name + ": " + render(lhs) +
         "\n" + rhs_name + " " + pred_name + ": " + render(rhs);
}

bool SameDeterministicStats(const EvalStats& a, const EvalStats& b,
                            std::string* detail) {
  if (a.rounds != b.rounds || a.facts_derived != b.facts_derived ||
      a.instantiations != b.instantiations) {
    *detail = "scalar stats diverge: rounds " + std::to_string(a.rounds) +
              " vs " + std::to_string(b.rounds) + ", facts " +
              std::to_string(a.facts_derived) + " vs " +
              std::to_string(b.facts_derived) + ", instantiations " +
              std::to_string(a.instantiations) + " vs " +
              std::to_string(b.instantiations);
    return false;
  }
  if (a.per_rule.size() != b.per_rule.size()) {
    *detail = "per-rule stats sized " + std::to_string(a.per_rule.size()) +
              " vs " + std::to_string(b.per_rule.size());
    return false;
  }
  for (size_t i = 0; i < a.per_rule.size(); ++i) {
    if (a.per_rule[i].matches != b.per_rule[i].matches ||
        a.per_rule[i].tuples_produced != b.per_rule[i].tuples_produced) {
      *detail = "per-rule stats diverge at rule " + std::to_string(i);
      return false;
    }
  }
  return true;
}

OracleVerdict Inapplicable() { return OracleVerdict{}; }

OracleVerdict Agreed() {
  OracleVerdict v;
  v.applicable = true;
  return v;
}

OracleVerdict Disagreed(std::string detail) {
  OracleVerdict v;
  v.applicable = true;
  v.agreed = false;
  v.detail = std::move(detail);
  return v;
}

// ---- kNaiveVsSemiNaive --------------------------------------------------

OracleVerdict RunNaiveVsSemiNaive(ParsedCase* c) {
  if (!c->ValidDialect(Dialect::kDatalog)) return Inapplicable();
  Result<Instance> naive = c->engine.MinimumModelNaive(*c->program, *c->db);
  Result<Instance> seminaive = c->engine.MinimumModel(*c->program, *c->db);
  if (!naive.ok()) return Disagreed("naive: " + naive.status().ToString());
  if (!seminaive.ok()) {
    return Disagreed("semi-naive: " + seminaive.status().ToString());
  }
  if (*naive != *seminaive) {
    return Disagreed(DescribeDiff("naive", *naive, "semi-naive", *seminaive,
                                  c->engine.symbols()));
  }
  return Agreed();
}

// ---- kMagicVsOriginal ---------------------------------------------------

OracleVerdict RunMagicVsOriginal(ParsedCase* c, uint64_t salt) {
  if (!c->ValidDialect(Dialect::kDatalog)) return Inapplicable();
  Result<Instance> full = c->engine.MinimumModel(*c->program, *c->db);
  if (!full.ok()) return Disagreed("full: " + full.status().ToString());

  // Bound values are drawn from the case's own domain so roughly half the
  // adorned queries are nonempty.
  std::set<Value> domain = c->db->ActiveDomain();
  domain.insert(c->program->constants.begin(), c->program->constants.end());
  std::vector<Value> values(domain.begin(), domain.end());
  if (values.empty()) values.push_back(c->engine.symbols().InternInt(0));

  Rng rng(salt);
  for (PredId q : c->program->idb_preds) {
    const int arity = c->engine.catalog().ArityOf(q);
    MagicQuery query;
    query.query_pred = q;
    for (int a = 0; a < arity; ++a) {
      const bool bound = rng.Chance(0.5);
      query.adornment += bound ? 'b' : 'f';
      if (bound) {
        query.bound_values.push_back(values[rng.Uniform(values.size())]);
      }
    }
    Result<MagicRewrite> rewrite =
        MagicSetRewrite(*c->program, query, &c->engine.catalog());
    if (!rewrite.ok()) {
      return Disagreed("rewrite: " + rewrite.status().ToString());
    }
    Instance input = *c->db;
    input.UnionWith(rewrite->seed);

    // Oracle answer: the full model filtered by the bound columns.
    Relation expected(arity);
    for (const Tuple& t : full->Rel(q)) {
      bool match = true;
      size_t bi = 0;
      for (int a = 0; a < arity; ++a) {
        if (query.adornment[static_cast<size_t>(a)] == 'b' &&
            t[static_cast<size_t>(a)] != query.bound_values[bi++]) {
          match = false;
          break;
        }
      }
      if (match) expected.Insert(t);
    }

    // The rewritten program must agree under both evaluation algorithms.
    const std::string label = c->engine.catalog().NameOf(q) + "^" +
                              query.adornment;
    Result<Instance> magic_sn =
        c->engine.MinimumModel(rewrite->program, input);
    if (!magic_sn.ok()) {
      return Disagreed("magic/semi-naive " + label + ": " +
                       magic_sn.status().ToString());
    }
    if (magic_sn->Rel(rewrite->query_pred) != expected) {
      return Disagreed(
          "magic/semi-naive query " + label + "\n" +
          DescribeRelDiff("magic", magic_sn->Rel(rewrite->query_pred),
                          "filtered-full", expected, label,
                          c->engine.symbols()));
    }
    Result<Instance> magic_naive =
        c->engine.MinimumModelNaive(rewrite->program, input);
    if (!magic_naive.ok()) {
      return Disagreed("magic/naive " + label + ": " +
                       magic_naive.status().ToString());
    }
    if (magic_naive->Rel(rewrite->query_pred) != expected) {
      return Disagreed(
          "magic/naive query " + label + "\n" +
          DescribeRelDiff("magic", magic_naive->Rel(rewrite->query_pred),
                          "filtered-full", expected, label,
                          c->engine.symbols()));
    }
  }
  return Agreed();
}

// ---- kInflationaryVsWhile -----------------------------------------------

OracleVerdict RunInflationaryVsWhile(ParsedCase* c) {
  if (!c->ValidDialect(Dialect::kSemiPositive)) return Inapplicable();
  Result<InflationaryResult> infl = c->engine.Inflationary(*c->program, *c->db);
  if (!infl.ok()) {
    return Disagreed("inflationary: " + infl.status().ToString());
  }
  Result<WhileProgram> wprog =
      DatalogToWhile(*c->program, c->engine.catalog());
  if (!wprog.ok()) {
    return Disagreed("translation: " + wprog.status().ToString());
  }
  Result<Instance> wres = RunWhile(*wprog, *c->db, WhileOptions{});
  if (!wres.ok()) return Disagreed("while: " + wres.status().ToString());
  Instance infl_idb = infl->instance.Restrict(c->program->idb_preds);
  Instance while_idb = wres->Restrict(c->program->idb_preds);
  if (infl_idb != while_idb) {
    return Disagreed(DescribeDiff("inflationary", infl_idb, "while",
                                  while_idb, c->engine.symbols()));
  }
  return Agreed();
}

// ---- kWellFoundedVsStratified -------------------------------------------

OracleVerdict RunWellFoundedVsStratified(ParsedCase* c) {
  if (!c->ValidDialect(Dialect::kStratified)) return Inapplicable();
  Result<Instance> strat = c->engine.Stratified(*c->program, *c->db);
  if (!strat.ok()) {
    return Disagreed("stratified: " + strat.status().ToString());
  }
  Result<WellFoundedModel> wf = c->engine.WellFounded(*c->program, *c->db);
  if (!wf.ok()) {
    return Disagreed("well-founded: " + wf.status().ToString());
  }
  if (!wf->IsTotal()) {
    return Disagreed(
        "well-founded model of a stratified program is not total:\n" +
        DescribeDiff("true", wf->true_facts, "possible", wf->possible_facts,
                     c->engine.symbols()));
  }
  if (wf->true_facts != *strat) {
    return Disagreed(DescribeDiff("well-founded", wf->true_facts,
                                  "stratified", *strat,
                                  c->engine.symbols()));
  }
  return Agreed();
}

// ---- kSequentialVsParallel ----------------------------------------------

OracleVerdict RunSequentialVsParallel(ParsedCase* c,
                                      const std::vector<int>& thread_counts) {
  if (!c->ValidDialect(Dialect::kStratified)) return Inapplicable();
  c->engine.options().num_threads = 1;
  EvalStats seq_stats;
  Result<Instance> seq = c->engine.Stratified(*c->program, *c->db, &seq_stats);
  if (!seq.ok()) {
    return Disagreed("sequential: " + seq.status().ToString());
  }
  Result<InflationaryResult> seq_infl =
      c->engine.Inflationary(*c->program, *c->db);
  if (!seq_infl.ok()) {
    return Disagreed("sequential inflationary: " +
                     seq_infl.status().ToString());
  }
  for (int t : thread_counts) {
    c->engine.options().num_threads = t;
    const std::string label = "t=" + std::to_string(t);
    EvalStats par_stats;
    Result<Instance> par =
        c->engine.Stratified(*c->program, *c->db, &par_stats);
    if (!par.ok()) {
      return Disagreed(label + ": " + par.status().ToString());
    }
    if (*par != *seq) {
      return Disagreed(label + " stratified result diverges\n" +
                       DescribeDiff("sequential", *seq, label.c_str(), *par,
                                    c->engine.symbols()));
    }
    std::string stats_detail;
    if (!SameDeterministicStats(seq_stats, par_stats, &stats_detail)) {
      return Disagreed(label + " stratified " + stats_detail);
    }
    Result<InflationaryResult> par_infl =
        c->engine.Inflationary(*c->program, *c->db);
    if (!par_infl.ok()) {
      return Disagreed(label + " inflationary: " +
                       par_infl.status().ToString());
    }
    if (par_infl->instance != seq_infl->instance ||
        par_infl->stages != seq_infl->stages) {
      return Disagreed(label + " inflationary result diverges\n" +
                       DescribeDiff("sequential", seq_infl->instance,
                                    label.c_str(), par_infl->instance,
                                    c->engine.symbols()));
    }
    if (!SameDeterministicStats(seq_infl->stats, par_infl->stats,
                                &stats_detail)) {
      return Disagreed(label + " inflationary " + stats_detail);
    }
  }
  return Agreed();
}

// ---- kTraceOnVsTraceOff -------------------------------------------------

/// Scope guard turning the process-wide tracer and metrics registry on
/// for one comparison, restoring the previous metrics gate (a --metrics
/// sweep may have it on) and disabling the tracer on exit — a
/// disagreement must not leave a tracing session open for later cases.
class ObsSession {
 public:
  ObsSession() : metrics_was_enabled_(obs::MetricsRegistry::Get().enabled()) {
    obs::Tracer::Get().Enable(/*events_per_thread=*/size_t{1} << 12);
    obs::MetricsRegistry::Get().SetEnabled(true);
  }
  ~ObsSession() {
    obs::MetricsRegistry::Get().SetEnabled(metrics_was_enabled_);
    obs::Tracer::Get().Disable();
  }

 private:
  const bool metrics_was_enabled_;
};

OracleVerdict RunTraceOnVsTraceOff(ParsedCase* c) {
  if (!c->ValidDialect(Dialect::kStratified)) return Inapplicable();
  EvalStats off_stats;
  Result<Instance> off = c->engine.Stratified(*c->program, *c->db, &off_stats);
  if (!off.ok()) return Disagreed("trace-off: " + off.status().ToString());

  EvalStats on_stats;
  std::optional<Result<Instance>> on;
  {
    ObsSession session;
    on.emplace(c->engine.Stratified(*c->program, *c->db, &on_stats));
  }
  if (!on->ok()) return Disagreed("trace-on: " + on->status().ToString());
  if (**on != *off) {
    return Disagreed("tracing changed the stratified model\n" +
                     DescribeDiff("trace-off", *off, "trace-on", **on,
                                  c->engine.symbols()));
  }
  std::string stats_detail;
  if (!SameDeterministicStats(off_stats, on_stats, &stats_detail)) {
    return Disagreed("trace-on " + stats_detail);
  }
  return Agreed();
}

// ---- kReliableVsFaultyPeers ---------------------------------------------

/// The three fault schedules every case runs against, in addition to the
/// reliable baseline: (0) lossy/chaotic link, (1) a partition that heals,
/// (2) a crash with checkpoint recovery under residual loss. Fixed shapes
/// so failures reproduce from (case, salt) alone; the salt seeds the
/// transports' Rngs through ConvergenceOptions.
std::vector<FaultSpec> FaultyPeerSchedules() {
  std::vector<FaultSpec> schedules(3);
  FaultSchedule& chaos = schedules[0].faults;
  chaos.drop = 0.25;
  chaos.duplicate = 0.2;
  chaos.reorder = 0.5;
  chaos.delay = 0.3;
  chaos.max_delay_rounds = 2;
  FaultSchedule& split = schedules[1].faults;
  split.drop = 0.15;
  split.partitions.push_back(NetworkPartition{2, 6, {0}});
  FaultSchedule& crash = schedules[2].faults;
  crash.drop = 0.1;
  crash.duplicate = 0.1;
  schedules[2].crashes.events.push_back(CrashEvent{1, 2, 2});
  return schedules;
}

OracleVerdict RunReliableVsFaultyPeers(ParsedCase* c,
                                       const std::string& program_text,
                                       const std::string& facts_text,
                                       uint64_t salt) {
  // CALM restricts the oracle to the monotone (positive) dialect: with
  // negation in bodies the asynchronous fixpoint depends on delivery
  // timing even between two *reliable* runs.
  if (!c->ValidDialect(Dialect::kDatalog)) return Inapplicable();

  // Three peers in a gossip ring, each running the generated program
  // locally and forwarding every predicate it holds to the next peer; all
  // initial facts live at the first peer. Every peer therefore converges
  // to the same instance, and every fact crosses the (faulty) network.
  const Catalog& catalog = c->engine.catalog();
  const char* names[3] = {"pa", "pb", "pc"};
  std::vector<PredId> preds = c->program->edb_preds;
  preds.insert(preds.end(), c->program->idb_preds.begin(),
               c->program->idb_preds.end());
  std::vector<PeerSpec> specs(3);
  for (int i = 0; i < 3; ++i) {
    std::string forward;
    for (PredId p : preds) {
      const std::string& name = catalog.NameOf(p);
      const int arity = catalog.ArityOf(p);
      // Nullary predicates cannot be written as atoms, and predicates
      // already using the location convention would nest ambiguously.
      if (arity == 0) continue;
      if (name.rfind("at_", 0) == 0) return Inapplicable();
      std::string args;
      for (int a = 0; a < arity; ++a) {
        if (a > 0) args += ", ";
        args += "X" + std::to_string(a);
      }
      forward += "at_" + std::string(names[(i + 1) % 3]) + "_" + name + "(" +
                 args + ") :- " + name + "(" + args + ").\n";
    }
    specs[static_cast<size_t>(i)] =
        PeerSpec{names[i], program_text + forward, i == 0 ? facts_text : ""};
  }

  ConvergenceOptions options;
  // Faulty runs take many more rounds than the reliable baseline (backoff,
  // partitions, crash recovery) but the ring is tiny; this budget is far
  // beyond anything a converging run needs, so hitting it is a bug.
  options.eval.max_rounds = 10'000;
  options.eval.storage = c->engine.options().storage;
  options.schedules = FaultyPeerSchedules();
  options.seed = salt;
  options.checkpoint_every_rounds = 2;

  Result<ConvergenceReport> report = CheckConvergence(specs, options);
  if (!report.ok()) {
    return Disagreed("convergence run failed: " + report.status().ToString());
  }
  if (!report->converged) return Disagreed(report->divergence);
  return Agreed();
}

// ---- kHashVsColumnar ----------------------------------------------------

OracleVerdict RunHashVsColumnar(ParsedCase* c) {
  if (!c->ValidDialect(Dialect::kStratified)) return Inapplicable();
  // Single-threaded so the comparison isolates the storage backend; the
  // parallel axis is covered by kSequentialVsParallel, which a
  // --storage=columnar sweep runs on the columnar plane anyway.
  c->engine.options().num_threads = 1;
  c->engine.options().storage = storage::StorageBackend::kHash;
  EvalStats hash_stats;
  Result<Instance> hash =
      c->engine.Stratified(*c->program, *c->db, &hash_stats);
  if (!hash.ok()) return Disagreed("hash: " + hash.status().ToString());

  c->engine.options().storage = storage::StorageBackend::kColumnar;
  EvalStats col_stats;
  Result<Instance> col = c->engine.Stratified(*c->program, *c->db, &col_stats);
  if (!col.ok()) return Disagreed("columnar: " + col.status().ToString());

  if (*col != *hash) {
    return Disagreed("storage backends disagree on the stratified model\n" +
                     DescribeDiff("hash", *hash, "columnar", *col,
                                  c->engine.symbols()));
  }
  std::string stats_detail;
  if (!SameDeterministicStats(hash_stats, col_stats, &stats_detail)) {
    return Disagreed("columnar " + stats_detail);
  }
  return Agreed();
}

// ---- kIncrementalVsScratch ----------------------------------------------

/// Parses the `%~` update-batch lines out of a facts text: one batch per
/// line, one `+pred(v,...)` / `-pred(v,...)` token per update, integer
/// arguments only (the generator's value domain). Token parsing is shared
/// with the server's session scripts (server::ParseUpdateTokens). Returns
/// false on any malformed token or unknown/wrong-arity predicate — the
/// pair then reads as inapplicable, which is what the shrinker's blind
/// line edits need.
bool ParseUpdateBatches(const std::string& facts_text, Engine* engine,
                        std::vector<std::vector<FactUpdate>>* batches) {
  size_t pos = 0;
  while (pos < facts_text.size()) {
    size_t eol = facts_text.find('\n', pos);
    if (eol == std::string::npos) eol = facts_text.size();
    std::string_view line(facts_text.data() + pos, eol - pos);
    pos = eol + 1;
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    if (line.substr(0, 2) != "%~") continue;
    line.remove_prefix(2);
    std::vector<FactUpdate> batch;
    if (!server::ParseUpdateTokens(line, engine->catalog(),
                                   &engine->symbols(), &batch)) {
      return false;
    }
    if (!batch.empty()) batches->push_back(std::move(batch));
  }
  return true;
}

bool SameMaintenanceStats(const IncrementalView::Stats& a,
                          const IncrementalView::Stats& b,
                          std::string* detail) {
  auto diff = [&](const char* name, int64_t x, int64_t y) {
    if (x == y) return false;
    *detail = std::string("maintenance counter ") + name + " diverges: " +
              std::to_string(x) + " vs " + std::to_string(y);
    return true;
  };
  if (diff("batches", a.batches, b.batches) ||
      diff("inserts", a.inserts, b.inserts) ||
      diff("retracts", a.retracts, b.retracts) ||
      diff("noops", a.noops, b.noops) ||
      diff("counting_strata", a.counting_strata, b.counting_strata) ||
      diff("dred_strata", a.dred_strata, b.dred_strata) ||
      diff("recounted", a.recounted, b.recounted) ||
      diff("overdeleted", a.overdeleted, b.overdeleted) ||
      diff("rederived_base", a.rederived_base, b.rederived_base) ||
      diff("rederived_provenance", a.rederived_provenance,
           b.rederived_provenance) ||
      diff("rederived_query", a.rederived_query, b.rederived_query) ||
      diff("facts_added", a.facts_added, b.facts_added) ||
      diff("facts_removed", a.facts_removed, b.facts_removed)) {
    return false;
  }
  return true;
}

OracleVerdict RunIncrementalVsScratch(ParsedCase* c,
                                      const std::string& facts_text) {
  if (!c->ValidDialect(Dialect::kStratified)) return Inapplicable();
  std::vector<std::vector<FactUpdate>> batches;
  if (!ParseUpdateBatches(facts_text, &c->engine, &batches) ||
      batches.empty()) {
    return Inapplicable();
  }

  Result<std::unique_ptr<IncrementalView>> view = IncrementalView::Create(
      *c->program, c->engine.catalog(), *c->db, c->engine.options());
  if (!view.ok()) {
    // The incremental fragment is narrower than the stratified dialect
    // (no ∀-rules, adom-free safety); refusal is not a disagreement.
    if (view.status().code() == StatusCode::kUnsupported ||
        view.status().code() == StatusCode::kNotStratifiable) {
      return Inapplicable();
    }
    return Disagreed("incremental create: " + view.status().ToString());
  }

  // The initial from-scratch evaluation inside the view (sequential,
  // provenance-recording) must match a plain stratified run under the
  // sweep's storage/thread configuration, stats included.
  EvalStats initial_stats;
  Result<Instance> initial =
      c->engine.Stratified(*c->program, *c->db, &initial_stats);
  if (!initial.ok()) {
    return Disagreed("scratch initial: " + initial.status().ToString());
  }
  if ((*view)->model().SerializeSnapshot() != initial->SerializeSnapshot()) {
    return Disagreed("initial model diverges\n" +
                     DescribeDiff("incremental", (*view)->model(), "scratch",
                                  *initial, c->engine.symbols()));
  }
  std::string stats_detail;
  if (!SameDeterministicStats((*view)->initial_stats(), initial_stats,
                              &stats_detail)) {
    return Disagreed("initial " + stats_detail);
  }

  // Replay every batch on the view and mirror it into a scratch base; the
  // maintained model must be byte-identical to a from-scratch stratified
  // run on the mirrored base after each batch.
  Instance base = *c->db;
  for (size_t bi = 0; bi < batches.size(); ++bi) {
    const std::string label = "batch " + std::to_string(bi);
    if (Status st = (*view)->ApplyBatch(batches[bi]); !st.ok()) {
      return Disagreed(label + " apply: " + st.ToString());
    }
    for (const FactUpdate& u : batches[bi]) {
      if (u.insert) {
        base.Insert(u.pred, u.tuple);
      } else {
        base.Erase(u.pred, u.tuple);
      }
    }
    if ((*view)->base().SerializeSnapshot() != base.SerializeSnapshot()) {
      return Disagreed(label + " maintained base diverges\n" +
                       DescribeDiff("incremental", (*view)->base(), "mirror",
                                    base, c->engine.symbols()));
    }
    Result<Instance> fresh = c->engine.Stratified(*c->program, base);
    if (!fresh.ok()) {
      return Disagreed(label + " scratch: " + fresh.status().ToString());
    }
    if ((*view)->model().SerializeSnapshot() != fresh->SerializeSnapshot()) {
      return Disagreed(label + " maintained model diverges\n" +
                       DescribeDiff("incremental", (*view)->model(),
                                    "scratch", *fresh, c->engine.symbols()));
    }
  }

  // Determinism of the maintenance itself: a second view fed the same
  // update sequence must land on the same bytes and the same counters.
  Result<std::unique_ptr<IncrementalView>> replay = IncrementalView::Create(
      *c->program, c->engine.catalog(), *c->db, c->engine.options());
  if (!replay.ok()) {
    return Disagreed("replay create: " + replay.status().ToString());
  }
  for (const std::vector<FactUpdate>& batch : batches) {
    if (Status st = (*replay)->ApplyBatch(batch); !st.ok()) {
      return Disagreed("replay apply: " + st.ToString());
    }
  }
  if ((*replay)->model().SerializeSnapshot() !=
      (*view)->model().SerializeSnapshot()) {
    return Disagreed("replayed maintenance model diverges\n" +
                     DescribeDiff("first", (*view)->model(), "replay",
                                  (*replay)->model(), c->engine.symbols()));
  }
  if (!SameMaintenanceStats((*view)->stats(), (*replay)->stats(),
                            &stats_detail)) {
    return Disagreed("replay " + stats_detail);
  }
  return Agreed();
}

// ---- kServerVsLibrary ---------------------------------------------------

/// One virtual-clock run of the case's session script against a fresh
/// Server. Create-refusals surface as !created (inapplicable upstream
/// when the fragment is the reason). The server itself stays alive in
/// `server` — pair #11 reads its DurableStore after the run, pair #10
/// just lets it drop.
struct ServerRunOutcome {
  bool created = false;
  Status create_status;
  std::unique_ptr<server::Server> server;
  server::ScheduleRun run;
};

ServerRunOutcome RunServerSchedule(
    ParsedCase* c, const std::vector<server::SessionOp>& ops, uint64_t salt,
    const store::StoreOptions* durability = nullptr) {
  ServerRunOutcome outcome;
  server::ServerOptions options;
  options.eval = c->engine.options();
  if (durability != nullptr) options.durability = *durability;
  Result<std::unique_ptr<server::Server>> srv = server::Server::Create(
      *c->program, &c->engine.catalog(), &c->engine.symbols(), *c->db,
      options);
  if (!srv.ok()) {
    outcome.create_status = srv.status();
    return outcome;
  }
  outcome.created = true;
  outcome.server = std::move(*srv);
  server::SchedulerOptions sched;
  sched.seed = salt;
  // A seeded fraction of reads arrives pre-cancelled, so every fuzzed
  // schedule also exercises the refuse-without-leaking-a-pin path.
  sched.cancel_prob = 0.15;
  outcome.run = server::RunSessions(outcome.server.get(), ops, sched);
  return outcome;
}

OracleVerdict RunServerVsLibrary(ParsedCase* c, const std::string& facts_text,
                                 uint64_t salt) {
  if (!c->ValidDialect(Dialect::kStratified)) return Inapplicable();
  std::vector<server::SessionOp> ops;
  if (!server::ParseSessionScript(facts_text, &ops) || ops.empty()) {
    return Inapplicable();
  }

  ServerRunOutcome first = RunServerSchedule(c, ops, salt);
  if (!first.created) {
    // Same fragment gate as pair #9: the server wraps an IncrementalView.
    if (first.create_status.code() == StatusCode::kUnsupported ||
        first.create_status.code() == StatusCode::kNotStratifiable) {
      return Inapplicable();
    }
    return Disagreed("server create: " + first.create_status.ToString());
  }
  const server::ScheduleRun& run = first.run;
  if (!run.ok) return Disagreed("schedule: " + run.error);

  // 1. Sequential library replay of the commit log: one model copy per
  // epoch. Epoch e's published bytes must match the replay after the
  // first e batches — the torn-read check.
  Result<std::unique_ptr<IncrementalView>> view = IncrementalView::Create(
      *c->program, c->engine.catalog(), *c->db, c->engine.options());
  if (!view.ok()) {
    return Disagreed("library create: " + view.status().ToString());
  }
  std::vector<Instance> models;
  models.push_back((*view)->model());
  for (size_t i = 0; i < run.commits.size(); ++i) {
    if (run.commits[i].epoch != static_cast<int64_t>(i) + 1) {
      return Disagreed("commit log epoch " +
                       std::to_string(run.commits[i].epoch) +
                       " at position " + std::to_string(i));
    }
    if (Status st = (*view)->ApplyBatch(run.commits[i].batch); !st.ok()) {
      return Disagreed("library replay apply: " + st.ToString());
    }
    models.push_back((*view)->model());
  }
  if (run.epoch_bytes.size() != models.size()) {
    return Disagreed("server published " +
                     std::to_string(run.epoch_bytes.size()) +
                     " epochs but committed " +
                     std::to_string(run.commits.size()) + " batches");
  }
  for (size_t e = 0; e < models.size(); ++e) {
    if (models[e].SerializeSnapshot() != run.epoch_bytes[e]) {
      return Disagreed(
          "epoch " + std::to_string(e) +
          " published snapshot diverges from the sequential replay "
          "(torn read?)\nlibrary at epoch " + std::to_string(e) + ":\n  " +
          Truncate(models[e].ToString(c->engine.symbols())));
    }
  }

  // 2. Per-response checks: status discipline, payload bytes against the
  // replay model at the served epoch, monotone epochs per session (with
  // read-your-writes via the blocking update semantics).
  std::map<int, int64_t> last_epoch;
  for (const server::ScheduledEvent& ev : run.events) {
    const server::SessionOp& op = ops[ev.op_index];
    const std::string where = "session " + std::to_string(ev.session) +
                              " op " + std::to_string(ev.op_index) + " (" +
                              server::FormatSessionOp(op) + ")";
    if (ev.cancelled_injected) {
      if (ev.response.status != StatusCode::kCancelled) {
        return Disagreed(where + ": pre-cancelled read returned status " +
                         std::to_string(static_cast<int>(
                             ev.response.status)));
      }
      continue;
    }
    if (ev.response.status != StatusCode::kOk) {
      // Two refusals are legitimate, and both must be kSchemaError:
      // querying a predicate the program never mentions (the catalog has
      // no entry for it), and submitting an update batch the library-side
      // parser rejects too (unknown predicate or wrong arity). Anything
      // else — or a refusal of a request the library accepts — is a
      // disagreement.
      if (ev.response.status == StatusCode::kSchemaError) {
        if (op.kind == server::SessionOp::Kind::kQuery &&
            c->engine.catalog().Find(op.pred) < 0) {
          continue;
        }
        if (op.kind == server::SessionOp::Kind::kUpdate) {
          std::vector<FactUpdate> batch;
          if (!server::ParseUpdateTokens(op.update_tokens,
                                         c->engine.catalog(),
                                         &c->engine.symbols(), &batch)) {
            continue;
          }
        }
      }
      return Disagreed(where + ": " + ev.response.error);
    }
    const int64_t epoch = ev.response.epoch;
    if (epoch < 0 || epoch >= static_cast<int64_t>(models.size())) {
      return Disagreed(where + ": served epoch " + std::to_string(epoch) +
                       " out of range");
    }
    auto [it, inserted] = last_epoch.emplace(ev.session, epoch);
    if (!inserted) {
      if (epoch < it->second) {
        return Disagreed(where + ": epoch went backwards (" +
                         std::to_string(it->second) + " -> " +
                         std::to_string(epoch) + ")");
      }
      it->second = epoch;
    }
    const Instance& at = models[static_cast<size_t>(epoch)];
    switch (op.kind) {
      case server::SessionOp::Kind::kQuery: {
        const PredId pred = c->engine.catalog().Find(op.pred);
        if (pred < 0) {
          return Disagreed(where + ": unknown predicate served OK");
        }
        if (ev.response.body !=
            at.Restrict({pred}).SerializeSnapshot()) {
          return Disagreed(where + ": predicate bytes diverge from the "
                                   "replay at epoch " +
                           std::to_string(epoch));
        }
        break;
      }
      case server::SessionOp::Kind::kSnapshot:
        if (ev.response.body != run.epoch_bytes[static_cast<size_t>(epoch)]) {
          return Disagreed(where + ": snapshot bytes diverge at epoch " +
                           std::to_string(epoch));
        }
        break;
      case server::SessionOp::Kind::kUpdate:
        if (epoch < 1) {
          return Disagreed(where + ": update committed at epoch " +
                           std::to_string(epoch));
        }
        break;
    }
  }

  // 3. Maintenance counters: the server's view walked the same batches
  // in the same order as the replay view.
  std::string stats_detail;
  if (!SameMaintenanceStats(run.view_stats, (*view)->stats(),
                            &stats_detail)) {
    return Disagreed("server " + stats_detail);
  }

  // 4. Epoch-based reclamation quiesced: no pins held, every retired
  // snapshot reclaimed, exactly the current epoch alive.
  if (run.pinned != 0 || run.live_snapshots != 1 ||
      run.counters.pins != run.counters.unpins ||
      run.counters.reclaimed != run.counters.retired ||
      run.counters.retired != run.counters.published - 1) {
    return Disagreed(
        "reclamation counters unbalanced at quiescence: pinned=" +
        std::to_string(run.pinned) + " live=" +
        std::to_string(run.live_snapshots) + " pins=" +
        std::to_string(run.counters.pins) + " unpins=" +
        std::to_string(run.counters.unpins) + " published=" +
        std::to_string(run.counters.published) + " retired=" +
        std::to_string(run.counters.retired) + " reclaimed=" +
        std::to_string(run.counters.reclaimed));
  }

  // 5. Schedule determinism: the same seed must reproduce the identical
  // event stream, commit order and published bytes.
  ServerRunOutcome second = RunServerSchedule(c, ops, salt);
  if (!second.created || !second.run.ok) {
    return Disagreed("deterministic re-run failed to run");
  }
  if (second.run.events.size() != run.events.size() ||
      second.run.epoch_bytes != run.epoch_bytes ||
      second.run.commits.size() != run.commits.size()) {
    return Disagreed("deterministic re-run diverged in shape");
  }
  for (size_t i = 0; i < run.events.size(); ++i) {
    const server::ScheduledEvent& a = run.events[i];
    const server::ScheduledEvent& b = second.run.events[i];
    if (a.vtime != b.vtime || a.op_index != b.op_index ||
        a.session != b.session ||
        a.cancelled_injected != b.cancelled_injected ||
        a.response.status != b.response.status ||
        a.response.epoch != b.response.epoch ||
        a.response.body != b.response.body) {
      return Disagreed("deterministic re-run diverged at event " +
                       std::to_string(i));
    }
  }
  return Agreed();
}

// ---- kCrashRecoverVsReplay ----------------------------------------------

/// mkdtemp-backed store directory for one oracle run, emptied and removed
/// (best-effort) on scope exit so 1000-case sweeps don't litter TMPDIR.
class ScratchStoreDir {
 public:
  ScratchStoreDir() {
    const char* tmpdir = ::getenv("TMPDIR");
    std::string tmpl =
        std::string(tmpdir != nullptr && *tmpdir != '\0' ? tmpdir : "/tmp") +
        "/unchained-dur.XXXXXX";
    buf_.assign(tmpl.begin(), tmpl.end());
    buf_.push_back('\0');
    ok_ = ::mkdtemp(buf_.data()) != nullptr;
  }
  ~ScratchStoreDir() {
    if (!ok_) return;
    const std::string d = dir();
    ::unlink(store::WalPath(d).c_str());
    ::unlink(store::SnapshotPath(d).c_str());
    ::unlink(store::SnapshotTmpPath(d).c_str());
    ::rmdir(d.c_str());
  }
  bool ok() const { return ok_; }
  std::string dir() const { return std::string(buf_.data()); }

 private:
  std::vector<char> buf_;
  bool ok_ = false;
};

OracleVerdict RunCrashRecoverVsReplay(ParsedCase* c,
                                      const std::string& facts_text,
                                      uint64_t salt) {
  if (!c->ValidDialect(Dialect::kStratified)) return Inapplicable();
  std::vector<server::SessionOp> ops;
  if (!server::ParseSessionScript(facts_text, &ops) || ops.empty()) {
    return Inapplicable();
  }
  store::DurabilitySpec spec;
  bool have_spec = false;
  if (!store::ParseDurabilitySpec(facts_text, &spec, &have_spec) ||
      !have_spec) {
    // No (or blind-edit-mangled) `%!` line: nothing durable to check.
    return Inapplicable();
  }

  ScratchStoreDir scratch;
  if (!scratch.ok()) return Disagreed("mkdtemp for the store dir failed");

  store::StoreOptions durability;
  durability.dir = scratch.dir();
  durability.sync_every = spec.sync_every;
  durability.snapshot_every = spec.snapshot_every;
  // The crash is the schedule's, not the kernel's: tracking fsync
  // bookkeeping without fdatasync keeps 1000-case sweeps off the disk.
  durability.simulate_sync = true;
  durability.faults = spec.Schedule();

  ServerRunOutcome outcome = RunServerSchedule(c, ops, salt, &durability);
  if (!outcome.created) {
    // Same fragment gate as pairs #9/#10.
    if (outcome.create_status.code() == StatusCode::kUnsupported ||
        outcome.create_status.code() == StatusCode::kNotStratifiable) {
      return Inapplicable();
    }
    return Disagreed("durable server create: " +
                     outcome.create_status.ToString());
  }
  const server::ScheduleRun& run = outcome.run;
  if (!run.ok) return Disagreed("schedule: " + run.error);

  // Settle the shutdown flush first — a crash pending on the fsync path
  // fires here — then freeze the store's ground truth and destroy the
  // server (whose own destructor flush is now a no-op).
  (void)outcome.server->FlushStore();
  const store::DurableStore* st = outcome.server->store();
  if (st == nullptr) return Disagreed("durable server has no store");
  const std::vector<store::CommitAttempt> attempts = st->attempts();
  const bool store_crashed = st->crashed();
  const int64_t durable_epoch = st->durable_epoch();
  const char* crash_point =
      store_crashed ? store::CrashPointName(st->faults().crash_point) : "none";
  for (size_t i = 0; i < attempts.size(); ++i) {
    if (attempts[i].epoch != static_cast<int64_t>(i) + 1) {
      return Disagreed("commit attempt " + std::to_string(i) +
                       " carries epoch " + std::to_string(attempts[i].epoch));
    }
  }
  const int64_t last_attempt = static_cast<int64_t>(attempts.size());
  outcome.server.reset();

  Result<store::Recovered> rec =
      store::Recover(scratch.dir(), *c->program, c->engine.catalog(),
                     &c->engine.symbols(), *c->db, c->engine.options());
  const std::string where = std::string("(crash point ") + crash_point +
                            " after " + std::to_string(last_attempt) +
                            " attempts)";
  if (!rec.ok()) {
    return Disagreed("recover " + where + ": " + rec.status().ToString());
  }

  // 1. Bounded loss: everything durable survives, nothing beyond the last
  // attempted commit appears. Without a crash the shutdown flush makes
  // every attempt durable, so recovery must land exactly on the last one.
  if (rec->epoch < durable_epoch || rec->epoch > last_attempt) {
    return Disagreed("recovered epoch " + std::to_string(rec->epoch) +
                     " outside [durable " + std::to_string(durable_epoch) +
                     ", attempted " + std::to_string(last_attempt) + "] " +
                     where);
  }
  if (!store_crashed && rec->epoch != last_attempt) {
    return Disagreed("clean shutdown lost commits: recovered to epoch " +
                     std::to_string(rec->epoch) + " of " +
                     std::to_string(last_attempt));
  }

  // 2. Byte-identity against an independent replay of the surviving
  // prefix: a fresh IncrementalView walks attempts 1..recovered_epoch.
  Result<std::unique_ptr<IncrementalView>> replay = IncrementalView::Create(
      *c->program, c->engine.catalog(), *c->db, c->engine.options());
  if (!replay.ok()) {
    return Disagreed("replay create: " + replay.status().ToString());
  }
  for (int64_t e = 1; e <= rec->epoch; ++e) {
    std::vector<FactUpdate> batch;
    if (!server::ParseUpdateTokens(attempts[static_cast<size_t>(e - 1)]
                                       .update_tokens,
                                   c->engine.catalog(), &c->engine.symbols(),
                                   &batch)) {
      return Disagreed("attempt for epoch " + std::to_string(e) +
                       " holds unparseable tokens");
    }
    if (Status s = (*replay)->ApplyBatch(batch); !s.ok()) {
      return Disagreed("replay apply at epoch " + std::to_string(e) + ": " +
                       s.ToString());
    }
  }
  if (rec->view->model().SerializeSnapshot() !=
      (*replay)->model().SerializeSnapshot()) {
    return Disagreed("recovered model diverges from the replay of " +
                     std::to_string(rec->epoch) + " surviving commits " +
                     where + "\n" +
                     DescribeDiff("recovered", rec->view->model(), "replay",
                                  (*replay)->model(), c->engine.symbols()));
  }
  if (rec->view->base().SerializeSnapshot() !=
      (*replay)->base().SerializeSnapshot()) {
    return Disagreed("recovered base diverges from the replay " + where);
  }

  // 3. What clients saw: when the recovered epoch was published before
  // the crash, its bytes must match what the server handed out then.
  if (rec->epoch >= run.base_epoch &&
      rec->epoch - run.base_epoch <
          static_cast<int64_t>(run.epoch_bytes.size()) &&
      rec->view->model().SerializeSnapshot() !=
          run.epoch_bytes[static_cast<size_t>(rec->epoch - run.base_epoch)]) {
    return Disagreed("recovered model diverges from the bytes published at "
                     "epoch " +
                     std::to_string(rec->epoch) + " " + where);
  }

  // 4. Tail repair: after recovery the log must re-scan clean — a torn or
  // bit-flipped tail left behind (internal::g_store_skip_truncate) would
  // poison the next writer's appends.
  Result<store::WalScan> rescan = store::ScanWal(store::WalPath(scratch.dir()));
  if (!rescan.ok()) {
    return Disagreed("post-recovery wal scan: " + rescan.status().ToString());
  }
  if (!rescan->clean) {
    return Disagreed("wal still dirty after recovery " + where + ": " +
                     rescan->detail);
  }

  // 5. Idempotence: recovering the repaired directory again must land on
  // the same epoch and the same bytes.
  Result<store::Recovered> again =
      store::Recover(scratch.dir(), *c->program, c->engine.catalog(),
                     &c->engine.symbols(), *c->db, c->engine.options());
  if (!again.ok()) {
    return Disagreed("second recover: " + again.status().ToString());
  }
  if (again->epoch != rec->epoch ||
      again->view->model().SerializeSnapshot() !=
          rec->view->model().SerializeSnapshot()) {
    return Disagreed("recovery is not idempotent: epoch " +
                     std::to_string(rec->epoch) + " then " +
                     std::to_string(again->epoch) + " " + where);
  }
  return Agreed();
}

}  // namespace

std::vector<OraclePair> AllOraclePairs() {
  std::vector<OraclePair> pairs;
  pairs.reserve(kNumOraclePairs);
  for (int i = 0; i < kNumOraclePairs; ++i) {
    pairs.push_back(static_cast<OraclePair>(i));
  }
  return pairs;
}

const char* PairName(OraclePair pair) {
  switch (pair) {
    case OraclePair::kNaiveVsSemiNaive:
      return "naive-vs-seminaive";
    case OraclePair::kMagicVsOriginal:
      return "magic-vs-original";
    case OraclePair::kInflationaryVsWhile:
      return "inflationary-vs-while";
    case OraclePair::kWellFoundedVsStratified:
      return "wellfounded-vs-stratified";
    case OraclePair::kSequentialVsParallel:
      return "sequential-vs-parallel";
    case OraclePair::kTraceOnVsTraceOff:
      return "trace-on-vs-trace-off";
    case OraclePair::kReliableVsFaultyPeers:
      return "reliable-vs-faulty-peers";
    case OraclePair::kHashVsColumnar:
      return "hash-vs-columnar";
    case OraclePair::kIncrementalVsScratch:
      return "incremental-vs-scratch";
    case OraclePair::kServerVsLibrary:
      return "server-vs-library";
    case OraclePair::kCrashRecoverVsReplay:
      return "crash-recover-vs-replay";
  }
  return "unknown";
}

bool PairFromName(std::string_view name, OraclePair* out) {
  for (OraclePair pair : AllOraclePairs()) {
    if (name == PairName(pair)) {
      *out = pair;
      return true;
    }
  }
  return false;
}

OracleVerdict OracleRunner::Run(OraclePair pair, const std::string& program,
                                const std::string& facts,
                                uint64_t salt) const {
  ParsedCase c;
  if (!c.Init(program, facts)) return Inapplicable();
  // The sweep-wide backend applies to every pair's engines; pair #8 then
  // overrides it per run, diffing the two backends directly.
  c.engine.options().storage = options_.storage;
  switch (pair) {
    case OraclePair::kNaiveVsSemiNaive:
      return RunNaiveVsSemiNaive(&c);
    case OraclePair::kMagicVsOriginal:
      return RunMagicVsOriginal(&c, salt);
    case OraclePair::kInflationaryVsWhile:
      return RunInflationaryVsWhile(&c);
    case OraclePair::kWellFoundedVsStratified:
      return RunWellFoundedVsStratified(&c);
    case OraclePair::kSequentialVsParallel:
      return RunSequentialVsParallel(&c, options_.thread_counts);
    case OraclePair::kTraceOnVsTraceOff:
      return RunTraceOnVsTraceOff(&c);
    case OraclePair::kReliableVsFaultyPeers:
      return RunReliableVsFaultyPeers(&c, program, facts, salt);
    case OraclePair::kHashVsColumnar:
      return RunHashVsColumnar(&c);
    case OraclePair::kIncrementalVsScratch:
      return RunIncrementalVsScratch(&c, facts);
    case OraclePair::kServerVsLibrary:
      return RunServerVsLibrary(&c, facts, salt);
    case OraclePair::kCrashRecoverVsReplay:
      return RunCrashRecoverVsReplay(&c, facts, salt);
  }
  return Inapplicable();
}

}  // namespace fuzz
}  // namespace datalog
