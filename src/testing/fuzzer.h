#ifndef UNCHAINED_TESTING_FUZZER_H_
#define UNCHAINED_TESTING_FUZZER_H_

// The fuzzing loop tying the pieces together: generate a case, run every
// applicable oracle pair, run metamorphic mutants, shrink any failure to a
// 1-minimal repro and write it to an artifacts directory. Fully
// deterministic in (seed, options): a failing case number is a repro by
// itself.

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "testing/generator.h"
#include "testing/mutator.h"
#include "testing/oracle.h"
#include "testing/shrinker.h"

namespace datalog {
namespace fuzz {

struct FuzzOptions {
  int cases = 100;
  uint64_t seed = 1;
  /// Program classes cycled through case by case.
  std::vector<ProgramClass> classes = {
      ProgramClass::kPositive, ProgramClass::kSemiPositive,
      ProgramClass::kStratified, ProgramClass::kTotal};
  /// Oracle pairs run on each case (inapplicable pairs skip silently).
  std::vector<OraclePair> pairs = AllOraclePairs();
  /// Metamorphic mutants checked per case (0 disables).
  int mutants_per_case = 2;
  /// Minimize failures before reporting.
  bool shrink = true;
  /// Wall-clock budget for the whole sweep (0 = none). The loop stops
  /// cleanly between cases when the budget runs out; the report covers
  /// exactly the cases that ran (finalized, never partial-case garbage).
  int64_t deadline_ms = 0;
  /// Where repro files go; empty disables artifact writing.
  std::string artifacts_dir = "fuzz-artifacts";
  /// Progress / failure log; null silences.
  std::ostream* log = nullptr;

  GeneratorOptions generator;
  OracleOptions oracle;
  Shrinker::Options shrinker;
};

/// One disagreement, with its (possibly shrunk) repro.
struct FuzzFailure {
  int case_index = 0;
  ProgramClass cls = ProgramClass::kSemiPositive;
  /// Oracle pair name, or "metamorphic:<mutation>".
  std::string check;
  std::string detail;
  std::string program;
  std::string facts;
  /// True once the shrinker ran; the shrunk fields below are then
  /// authoritative even when empty (a server-side bug can shrink to zero
  /// rules — the program is not the culprit).
  bool shrunk = false;
  std::string shrunk_program;
  std::string shrunk_facts;
  int shrunk_rule_count = 0;
  int shrink_oracle_calls = 0;
  bool shrunk_one_minimal = false;
  /// Path of the written repro file, empty when artifacts are disabled or
  /// the write failed.
  std::string artifact_path;
};

struct FuzzReport {
  int cases_run = 0;
  /// True when FuzzOptions::deadline_ms stopped the sweep early.
  bool deadline_hit = false;
  /// Applicable oracle checks executed, keyed by pair name.
  std::map<std::string, int64_t> checks_by_name;
  /// Metamorphic mutant checks executed, keyed by mutation name.
  std::map<std::string, int64_t> mutants_by_name;
  std::vector<FuzzFailure> failures;

  int64_t TotalChecks() const;
  bool ok() const { return failures.empty(); }
};

/// Runs the loop. Never throws; engine-level errors on generated inputs
/// are themselves disagreements (the generator only emits legal programs).
FuzzReport RunFuzz(const FuzzOptions& options);

/// Writes `<dir>/case<k>-<check>.md` (a self-contained repro: shrunk
/// program, facts, diagnostic, reproduction command) plus the shrunk
/// `.dl` / `.facts` pair. Returns the .md path, or "" on I/O failure.
std::string WriteRepro(const std::string& dir, const FuzzFailure& failure,
                       uint64_t seed);

}  // namespace fuzz
}  // namespace datalog

#endif  // UNCHAINED_TESTING_FUZZER_H_
