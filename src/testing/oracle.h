#ifndef UNCHAINED_TESTING_ORACLE_H_
#define UNCHAINED_TESTING_ORACLE_H_

// Differential oracles: each OraclePair names two independently implemented
// evaluation routes that must agree on every legal input — the paper's
// equivalence theorems turned into executable checks (docs/testing.md).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ra/storage/storage.h"

namespace datalog {
namespace fuzz {

/// The engine pairs the fuzzer can diff:
///
///  * kNaiveVsSemiNaive     — Section 3.1: minimum model, naive vs
///                            delta-driven evaluation (positive programs).
///  * kMagicVsOriginal      — magic-sets rewrite vs filtered full model,
///                            under both naive and semi-naive evaluation
///                            (positive programs; random adornments).
///  * kInflationaryVsWhile  — Theorem 4.2: inflationary fixpoint vs the
///                            compiled fixpoint/while program
///                            (semi-positive programs).
///  * kWellFoundedVsStratified — Section 3.3: the well-founded model must
///                            be total and equal the stratified semantics
///                            on stratified programs.
///  * kSequentialVsParallel — PR 2's determinism contract: results and the
///                            deterministic EvalStats counters must be
///                            identical at every worker-pool size.
///  * kTraceOnVsTraceOff    — observability must be inert: running with
///                            tracing spans and the metrics registry
///                            enabled must produce instances and
///                            deterministic EvalStats identical to a run
///                            with observability off (stratified programs).
///  * kReliableVsFaultyPeers — the empirical CALM check (Section 6,
///                            docs/distribution.md): the generated program
///                            runs on a three-peer gossip ring once over
///                            the reliable transport and once per faulty
///                            schedule (drop/duplicate/reorder/delay,
///                            partitions, crash/restart); the final
///                            instances must be byte-identical. Positive
///                            programs only — the monotone dialect is what
///                            CALM promises is delivery-order independent.
///  * kHashVsColumnar       — the pluggable-storage contract
///                            (docs/storage.md): the stratified model and
///                            every deterministic EvalStats counter must
///                            be identical whether the semi-naive delta
///                            rounds run tuple-at-a-time over hash indexes
///                            or as merge joins / bitmap semijoins over
///                            the columnar backend.
///  * kIncrementalVsScratch — the maintenance contract
///                            (docs/incremental.md): an IncrementalView
///                            applying the case's `%~` update batches must
///                            match a from-scratch stratified run after
///                            every batch — byte-identical serialized
///                            snapshots, identical deterministic stats on
///                            the initial run, and a replayed view must
///                            reproduce the exact maintenance counters.
///  * kServerVsLibrary      — the snapshot-isolation contract
///                            (docs/server.md): the case's `%@` session
///                            script runs against a concurrent Server
///                            under a seeded virtual-clock schedule; the
///                            bytes published for every epoch, every
///                            query response, and the maintenance
///                            counters must match a *sequential*
///                            IncrementalView replay of the committed
///                            batches — plus monotone epochs per session,
///                            read-your-writes, balanced pin/reclaim
///                            counters at quiescence, and a re-run of the
///                            same seed reproducing the identical event
///                            stream.
///  * kCrashRecoverVsReplay — the durability contract
///                            (docs/durability.md): the case's session
///                            script runs against a *durable* server in a
///                            scratch store directory under the `%!`
///                            line's fault schedule (store/fault.h) — a
///                            seeded crash may fire mid-commit, tearing or
///                            bit-flipping the unsynced WAL tail. The
///                            server is then destroyed and the directory
///                            recovered (store/recover.h); the recovered
///                            epoch must land in [durable_epoch,
///                            last-attempted], the recovered model must be
///                            byte-identical to a fresh IncrementalView
///                            replay of the surviving commit prefix (and
///                            to the bytes the server published for that
///                            epoch), the repaired WAL must re-scan clean,
///                            and a second recovery must be idempotent.
enum class OraclePair {
  kNaiveVsSemiNaive,
  kMagicVsOriginal,
  kInflationaryVsWhile,
  kWellFoundedVsStratified,
  kSequentialVsParallel,
  kTraceOnVsTraceOff,
  kReliableVsFaultyPeers,
  kHashVsColumnar,
  kIncrementalVsScratch,
  kServerVsLibrary,
  kCrashRecoverVsReplay,
};

inline constexpr int kNumOraclePairs = 11;

/// All pairs, in declaration order.
std::vector<OraclePair> AllOraclePairs();

/// Short stable name ("naive-vs-seminaive", ...), used by the CLI and in
/// artifact files.
const char* PairName(OraclePair pair);

/// Inverse of PairName; returns false on an unknown name.
bool PairFromName(std::string_view name, OraclePair* out);

struct OracleOptions {
  /// Worker-pool sizes compared against the sequential run by
  /// kSequentialVsParallel.
  std::vector<int> thread_counts = {2, 4};
  /// Storage backend every pair's engines evaluate with (CLI:
  /// --storage=columnar runs the whole sweep on the columnar data
  /// plane). kHashVsColumnar ignores it — that pair always runs both
  /// backends and diffs them.
  storage::StorageBackend storage = storage::StorageBackend::kHash;
};

/// Outcome of one oracle run. A pair is *inapplicable* when the program
/// lies outside its dialect (e.g. naive-vs-seminaive on a program with
/// negation); inapplicable runs are vacuously ok.
struct OracleVerdict {
  bool applicable = false;
  bool agreed = true;
  /// Human-readable diff (first differing predicates/facts) when !agreed.
  std::string detail;

  bool ok() const { return !applicable || agreed; }
};

/// Runs oracle pairs on textual (program, facts) cases. Stateless apart
/// from options; every run parses into a fresh Engine, so disagreements
/// can never leak state between cases. `salt` seeds the pair's internal
/// random choices (magic adornments): the same (case, salt) always runs
/// the same comparison, which the shrinker relies on.
///
/// The facts text may carry update-batch lines of the form
/// `%~ +e1(0,1) -e2(3)` — one line per batch, one signed ground atom per
/// token. The parser reads them as `%` comments, so they are invisible to
/// every pair except kIncrementalVsScratch, which replays them against an
/// IncrementalView. It may also carry `%@ <sid> q|s|u ...` session-script
/// lines (server/session.h), equally comment-invisible, consumed by
/// kServerVsLibrary and kCrashRecoverVsReplay — the latter additionally
/// requires a `%! crash=... torn=... flip=... sync=... snap=...`
/// durability line (store/fault.h) naming its crash schedule.
class OracleRunner {
 public:
  OracleRunner() = default;
  explicit OracleRunner(const OracleOptions& options) : options_(options) {}

  const OracleOptions& options() const { return options_; }

  OracleVerdict Run(OraclePair pair, const std::string& program,
                    const std::string& facts, uint64_t salt) const;

 private:
  OracleOptions options_;
};

}  // namespace fuzz
}  // namespace datalog

#endif  // UNCHAINED_TESTING_ORACLE_H_
