#include "analysis/magic.h"

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace datalog {
namespace {

/// Key for the adorned-predicate worklist.
using Adorned = std::pair<PredId, std::string>;

struct RewriteState {
  const Program* original;
  Catalog* catalog;
  /// (pred, adornment) -> adorned PredId.
  std::map<Adorned, PredId> adorned_preds;
  /// (pred, adornment) -> magic PredId.
  std::map<Adorned, PredId> magic_preds;
  std::vector<Adorned> worklist;
  std::set<Adorned> processed;
  Program rewritten;
};

Result<PredId> AdornedPred(RewriteState* state, PredId pred,
                           const std::string& adornment) {
  auto it = state->adorned_preds.find({pred, adornment});
  if (it != state->adorned_preds.end()) return it->second;
  std::string name =
      state->catalog->NameOf(pred) + "_" + adornment;
  Result<PredId> id =
      state->catalog->Declare(name, state->catalog->ArityOf(pred));
  if (!id.ok()) return id;
  state->adorned_preds.emplace(Adorned{pred, adornment}, *id);
  state->worklist.push_back({pred, adornment});
  return id;
}

Result<PredId> MagicPred(RewriteState* state, PredId pred,
                         const std::string& adornment) {
  auto it = state->magic_preds.find({pred, adornment});
  if (it != state->magic_preds.end()) return it->second;
  int bound = 0;
  for (char c : adornment) bound += c == 'b' ? 1 : 0;
  std::string name = "magic_" + state->catalog->NameOf(pred) + "_" + adornment;
  Result<PredId> id = state->catalog->Declare(name, bound);
  if (!id.ok()) return id;
  state->magic_preds.emplace(Adorned{pred, adornment}, *id);
  return id;
}

/// The bound arguments of `atom` under `adornment`, in column order.
std::vector<Term> BoundArgs(const Atom& atom, const std::string& adornment) {
  std::vector<Term> out;
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    if (adornment[i] == 'b') out.push_back(atom.terms[i]);
  }
  return out;
}

/// Adornment of `atom` given the currently bound variables: a column is
/// bound if it holds a constant or a bound variable.
std::string ComputeAdornment(const Atom& atom, const std::set<int>& bound) {
  std::string adornment;
  for (const Term& t : atom.terms) {
    adornment += (!t.is_var() || bound.count(t.var)) ? 'b' : 'f';
  }
  return adornment;
}

/// Rewrites all rules defining (pred, adornment).
Status ProcessAdorned(RewriteState* state, const Adorned& target) {
  const auto& [pred, adornment] = target;
  Result<PredId> adorned_head = AdornedPred(state, pred, adornment);
  if (!adorned_head.ok()) return adorned_head.status();
  Result<PredId> magic_head = MagicPred(state, pred, adornment);
  if (!magic_head.ok()) return magic_head.status();

  for (const Rule& rule : state->original->rules) {
    if (rule.heads[0].atom.pred != pred) continue;
    const Atom& head = rule.heads[0].atom;

    // Variables bound at rule entry: those in bound head positions.
    std::set<int> bound;
    for (size_t i = 0; i < head.terms.size(); ++i) {
      if (adornment[i] == 'b' && head.terms[i].is_var()) {
        bound.insert(head.terms[i].var);
      }
    }

    // The magic guard literal for this rule.
    Atom guard;
    guard.pred = *magic_head;
    guard.terms = BoundArgs(head, adornment);

    Rule rewritten;
    rewritten.num_vars = rule.num_vars;
    rewritten.var_names = rule.var_names;
    Atom new_head = head;
    new_head.pred = *adorned_head;
    rewritten.heads.push_back(Literal::Positive(std::move(new_head)));
    rewritten.body.push_back(Literal::Positive(guard));

    // Left-to-right pass (full SIPS): emit magic rules for idb literals,
    // replace them by their adorned versions, and extend the bound set.
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Literal& lit = rule.body[i];
      // Positive Datalog only: every literal is a positive atom.
      const Atom& atom = lit.atom;
      if (state->original->IsIdb(atom.pred)) {
        std::string body_adornment = ComputeAdornment(atom, bound);
        Result<PredId> adorned_body =
            AdornedPred(state, atom.pred, body_adornment);
        if (!adorned_body.ok()) return adorned_body.status();
        Result<PredId> magic_body =
            MagicPred(state, atom.pred, body_adornment);
        if (!magic_body.ok()) return magic_body.status();

        // Magic rule: magic_q^b(bound args) <- guard, B_1..B_{i-1}. The
        // body is exactly what has been placed in `rewritten.body` so far
        // (the guard plus the rewritten B_1..B_{i-1}).
        Rule magic_rule;
        magic_rule.num_vars = rule.num_vars;
        magic_rule.var_names = rule.var_names;
        Atom magic_atom;
        magic_atom.pred = *magic_body;
        magic_atom.terms = BoundArgs(atom, body_adornment);
        magic_rule.heads.push_back(Literal::Positive(std::move(magic_atom)));
        magic_rule.body = rewritten.body;
        state->rewritten.rules.push_back(std::move(magic_rule));

        Atom adorned_atom = atom;
        adorned_atom.pred = *adorned_body;
        rewritten.body.push_back(Literal::Positive(std::move(adorned_atom)));
      } else {
        rewritten.body.push_back(lit);
      }
      for (const Term& t : atom.terms) {
        if (t.is_var()) bound.insert(t.var);
      }
    }
    state->rewritten.rules.push_back(std::move(rewritten));
  }
  return Status::OK();
}

}  // namespace

Result<MagicRewrite> MagicSetRewrite(const Program& program,
                                     const MagicQuery& query,
                                     Catalog* catalog) {
  OBS_SPAN("magic.rewrite", {{"rules", static_cast<int64_t>(program.rules.size())},
                             {"query", query.query_pred}});
  // Validate: positive Datalog, single positive heads.
  for (const Rule& rule : program.rules) {
    if (rule.heads.size() != 1 ||
        rule.heads[0].kind != Literal::Kind::kRelational ||
        rule.heads[0].negative) {
      return Status::Unsupported(
          "magic sets require single positive heads (positive Datalog)");
    }
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kRelational || lit.negative) {
        return Status::Unsupported(
            "magic sets require a negation-free (positive Datalog) program");
      }
    }
  }
  if (query.query_pred < 0 ||
      static_cast<int>(query.adornment.size()) !=
          catalog->ArityOf(query.query_pred)) {
    return Status::InvalidProgram(
        "query adornment length must equal the query predicate arity");
  }
  size_t bound_count = 0;
  for (char c : query.adornment) {
    if (c != 'b' && c != 'f') {
      return Status::InvalidProgram(
          "adornment must consist of 'b' and 'f' only");
    }
    bound_count += c == 'b' ? 1 : 0;
  }
  if (query.bound_values.size() != bound_count) {
    return Status::InvalidProgram(
        "bound_values size must equal the number of 'b' positions");
  }
  if (!program.IsIdb(query.query_pred)) {
    return Status::InvalidProgram("query predicate is not an idb predicate");
  }

  RewriteState state;
  state.original = &program;
  state.catalog = catalog;

  Result<PredId> adorned_query =
      AdornedPred(&state, query.query_pred, query.adornment);
  if (!adorned_query.ok()) return adorned_query.status();
  Result<PredId> magic_query =
      MagicPred(&state, query.query_pred, query.adornment);
  if (!magic_query.ok()) return magic_query.status();

  while (!state.worklist.empty()) {
    Adorned next = state.worklist.back();
    state.worklist.pop_back();
    if (!state.processed.insert(next).second) continue;
    DATALOG_RETURN_IF_ERROR(ProcessAdorned(&state, next));
  }

  // The adorned query predicate holds answers for *every* relevant
  // subquery reached by binding propagation; select the original query's
  // answers (bound columns pinned to the query constants) into a final
  // answer predicate.
  std::string ans_name = "ans_" + catalog->NameOf(query.query_pred) + "_" +
                         query.adornment;
  Result<PredId> ans_pred =
      catalog->Declare(ans_name, catalog->ArityOf(query.query_pred));
  if (!ans_pred.ok()) return ans_pred.status();
  Rule ans_rule;
  Atom ans_head, ans_body;
  ans_head.pred = *ans_pred;
  ans_body.pred = *adorned_query;
  size_t next_bound = 0;
  int next_var = 0;
  for (char c : query.adornment) {
    Term t;
    if (c == 'b') {
      t = Term::Const(query.bound_values[next_bound++]);
    } else {
      t = Term::Var(next_var);
      ans_rule.var_names.push_back("V" + std::to_string(next_var));
      ++next_var;
    }
    ans_head.terms.push_back(t);
    ans_body.terms.push_back(t);
  }
  ans_rule.num_vars = next_var;
  ans_rule.heads.push_back(Literal::Positive(std::move(ans_head)));
  ans_rule.body.push_back(Literal::Positive(std::move(ans_body)));
  state.rewritten.rules.push_back(std::move(ans_rule));

  MagicRewrite out(catalog);
  out.program = std::move(state.rewritten);
  out.program.RecomputeSchema();
  out.query_pred = *ans_pred;
  out.seed.Insert(*magic_query, query.bound_values);
  return out;
}

}  // namespace datalog
