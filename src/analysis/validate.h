#ifndef UNCHAINED_ANALYSIS_VALIDATE_H_
#define UNCHAINED_ANALYSIS_VALIDATE_H_

#include "ast/ast.h"
#include "ast/dialect.h"
#include "base/status.h"
#include "ra/catalog.h"

namespace datalog {

/// Checks that `program` lies within `dialect`:
///
///  * kDatalog            — no negation, no equality, single positive heads,
///                          head variables occur in the body;
///  * kSemiPositive       — Datalog¬ with negation on edb predicates only;
///  * kStratified         — Datalog¬ with no recursion through negation;
///  * kDatalogNeg         — negation in bodies; head variables occur in the
///                          body (possibly only in negative literals:
///                          valuations range over the active domain);
///  * kDatalogNegNeg      — additionally negative heads;
///  * kDatalogNew         — Datalog¬ whose extra head variables invent
///                          values;
///  * kNDatalog*          — multi-head rules and (in)equality literals; head
///                          variables must be positively bound (Def. 5.1);
///                          ⊥ heads only in kNDatalogBottom (as sole head);
///                          ∀ prefixes only in kNDatalogForall (over
///                          variables that do not occur in the head);
///                          invention only in kNDatalogNew.
///
/// Returns kInvalidProgram (or kNotStratifiable) with the offending rule
/// rendered in the message.
Status ValidateProgram(const Program& program, const Catalog& catalog,
                       Dialect dialect);

}  // namespace datalog

#endif  // UNCHAINED_ANALYSIS_VALIDATE_H_
