#ifndef UNCHAINED_ANALYSIS_MAGIC_H_
#define UNCHAINED_ANALYSIS_MAGIC_H_

#include <string>

#include "ast/ast.h"
#include "base/result.h"
#include "ra/instance.h"

namespace datalog {

/// A query against a positive Datalog program with a binding pattern:
/// `adornment[i]` is 'b' (bound) or 'f' (free) for column i of
/// `query_pred`; `bound_values` supplies the values of the bound columns,
/// in order. Example: reachability from a single source is the query
/// (t, "bf", {a}) against the transitive-closure program.
struct MagicQuery {
  PredId query_pred = -1;
  std::string adornment;
  Tuple bound_values;
};

/// Result of the magic-sets transformation.
struct MagicRewrite {
  /// The rewritten program over adorned predicates (declared in the
  /// catalog as "<pred>_<adornment>") guarded by magic predicates
  /// ("magic_<pred>_<adornment>", arity = number of bound columns).
  Program program;
  /// The magic seed fact(s) for the query; union into the input before
  /// evaluation.
  Instance seed;
  /// The answer predicate ("ans_<pred>_<adornment>", same arity as the
  /// query predicate): after evaluating `program` on input ∪ seed, its
  /// relation holds exactly the original query's answers. (The adorned
  /// predicates themselves also hold answers to every relevant subquery
  /// reached by binding propagation.)
  PredId query_pred = -1;

  explicit MagicRewrite(const Catalog* catalog) : seed(catalog) {}
};

/// The magic-sets rewriting for positive Datalog (the classic
/// query-directed optimization developed "around Datalog" that Sections
/// 3.1/6 of the paper refer to): specializes the program to derive only
/// facts relevant to the query's bindings, propagating bindings
/// left-to-right through rule bodies (full SIPS).
///
/// Guarantees: evaluating the rewritten program over input ∪ seed yields,
/// in the adorned query predicate, exactly the answers of the original
/// query — usually deriving far fewer irrelevant facts (see
/// bench/magic_ablation and tests/magic_test).
///
/// Restrictions: the program must be positive Datalog with single-literal
/// heads (kUnsupported otherwise); `adornment` must match the query
/// predicate's arity.
Result<MagicRewrite> MagicSetRewrite(const Program& program,
                                     const MagicQuery& query,
                                     Catalog* catalog);

}  // namespace datalog

#endif  // UNCHAINED_ANALYSIS_MAGIC_H_
