#ifndef UNCHAINED_ANALYSIS_STRATIFY_H_
#define UNCHAINED_ANALYSIS_STRATIFY_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "ra/catalog.h"

namespace datalog {

/// One edge of the predicate dependency graph: body predicate -> head
/// predicate, marked negative when the body occurrence is negated.
struct DepEdge {
  PredId from;
  PredId to;
  bool negative;
};

/// The predicate dependency graph of a program (Section 3.2): an edge
/// b -> h for every rule with head predicate h and body literal over b.
struct DependencyGraph {
  int num_preds = 0;
  std::vector<DepEdge> edges;

  /// Strongly connected components (Tarjan); `component[p]` is the SCC id
  /// of predicate p, ids in reverse topological order of the condensation.
  std::vector<int> SccComponents() const;
};

DependencyGraph BuildDependencyGraph(const Program& program,
                                     const Catalog& catalog);

/// Result of stratifying a program.
struct Stratification {
  bool ok = false;
  /// Diagnostic when `!ok` (names the predicates in a negative cycle).
  std::string error;
  /// Stratum of each predicate (indexed by PredId; 0 for untouched preds).
  std::vector<int> stratum_of_pred;
  int num_strata = 0;
  /// Rule indices grouped by stratum (a rule's stratum is the max over the
  /// strata of its head predicates).
  std::vector<std::vector<int>> rules_by_stratum;
};

/// Computes a stratification (Section 3.2): strata such that each rule's
/// positive body predicates are in the same or an earlier stratum and each
/// negated body predicate is in a strictly earlier stratum. Fails iff the
/// program has recursion through negation (a negative edge inside an SCC).
Stratification Stratify(const Program& program, const Catalog& catalog);

/// True if every negated body literal is over an edb predicate
/// (semi-positive Datalog¬, Section 4.5).
bool IsSemiPositive(const Program& program);

}  // namespace datalog

#endif  // UNCHAINED_ANALYSIS_STRATIFY_H_
