#include "analysis/validate.h"

#include <set>
#include <string>

#include "analysis/stratify.h"

namespace datalog {
namespace {

struct Features {
  bool allow_negative_body = false;
  bool allow_negative_head = false;
  bool allow_multi_head = false;
  bool allow_bottom = false;
  bool allow_equality = false;
  bool allow_forall = false;
  bool allow_invention = false;
  /// Nondeterministic dialects require head variables to be *positively*
  /// bound; deterministic ones only require occurrence in the body.
  bool require_positive_binding = false;
};

Features FeaturesOf(Dialect dialect) {
  Features f;
  switch (dialect) {
    case Dialect::kDatalog:
      break;
    case Dialect::kSemiPositive:
    case Dialect::kStratified:
    case Dialect::kDatalogNeg:
      f.allow_negative_body = true;
      break;
    case Dialect::kDatalogNegNeg:
      f.allow_negative_body = true;
      f.allow_negative_head = true;
      break;
    case Dialect::kDatalogNew:
      f.allow_negative_body = true;
      f.allow_invention = true;
      break;
    case Dialect::kNDatalogNeg:
      f.allow_negative_body = true;
      f.allow_multi_head = true;
      f.allow_equality = true;
      f.require_positive_binding = true;
      break;
    case Dialect::kNDatalogNegNeg:
      f.allow_negative_body = true;
      f.allow_negative_head = true;
      f.allow_multi_head = true;
      f.allow_equality = true;
      f.require_positive_binding = true;
      break;
    case Dialect::kNDatalogBottom:
      f.allow_negative_body = true;
      f.allow_multi_head = true;
      f.allow_equality = true;
      f.allow_bottom = true;
      f.require_positive_binding = true;
      break;
    case Dialect::kNDatalogForall:
      f.allow_negative_body = true;
      f.allow_multi_head = true;
      f.allow_equality = true;
      f.allow_forall = true;
      f.require_positive_binding = true;
      break;
    case Dialect::kNDatalogNew:
      f.allow_negative_body = true;
      f.allow_multi_head = true;
      f.allow_equality = true;
      f.allow_invention = true;
      f.require_positive_binding = true;
      break;
  }
  return f;
}

/// Variables bound by a positive relational literal, closed under positive
/// equalities with a bound side (Definition 5.1's "positively bound").
std::set<int> PositivelyBoundVars(const Rule& rule) {
  std::set<int> bound = rule.PositiveBodyVars();
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& l : rule.body) {
      if (l.kind != Literal::Kind::kEquality || l.negative) continue;
      bool lhs_bound = !l.lhs.is_var() || bound.count(l.lhs.var) > 0;
      bool rhs_bound = !l.rhs.is_var() || bound.count(l.rhs.var) > 0;
      if (lhs_bound && l.rhs.is_var() && !rhs_bound) {
        bound.insert(l.rhs.var);
        changed = true;
      }
      if (rhs_bound && l.lhs.is_var() && !lhs_bound) {
        bound.insert(l.lhs.var);
        changed = true;
      }
    }
  }
  return bound;
}

}  // namespace

Status ValidateProgram(const Program& program, const Catalog& catalog,
                       Dialect dialect) {
  const Features f = FeaturesOf(dialect);
  // Diagnostics reference rules by 1-based index and variables by their
  // source names (stored in the rule), so no symbol table is needed here.
  for (size_t i = 0; i < program.rules.size(); ++i) {
    const Rule& rule = program.rules[i];
    auto fail = [&](const std::string& why) {
      return Status::InvalidProgram("rule #" + std::to_string(i + 1) + ": " +
                                    why + " (not allowed in " +
                                    DialectName(dialect) + ")");
    };

    if (rule.heads.empty()) {
      return Status::InvalidProgram("rule #" + std::to_string(i + 1) +
                                    ": rule has no head");
    }
    if (rule.heads.size() > 1 && !f.allow_multi_head) {
      return fail("multiple head literals");
    }
    for (const Literal& head : rule.heads) {
      switch (head.kind) {
        case Literal::Kind::kBottom:
          if (!f.allow_bottom) return fail("'bottom' head");
          if (rule.heads.size() != 1) {
            return fail("'bottom' must be the only head literal");
          }
          break;
        case Literal::Kind::kEquality:
          return fail("equality literal in head");
        case Literal::Kind::kRelational:
          if (head.negative && !f.allow_negative_head) {
            return fail("negative head literal");
          }
          break;
      }
    }
    for (const Literal& body : rule.body) {
      switch (body.kind) {
        case Literal::Kind::kBottom:
          return fail("'bottom' in body");
        case Literal::Kind::kEquality:
          if (!f.allow_equality) return fail("equality literal in body");
          break;
        case Literal::Kind::kRelational:
          if (body.negative) {
            if (!f.allow_negative_body) return fail("negation in body");
            if (dialect == Dialect::kSemiPositive &&
                program.IsIdb(body.atom.pred)) {
              return fail("negation applied to idb predicate '" +
                          catalog.NameOf(body.atom.pred) + "'");
            }
          }
          break;
      }
    }

    if (!rule.universal_vars.empty()) {
      if (!f.allow_forall) return fail("'forall' prefix");
      std::set<int> head_vars = rule.HeadVars();
      for (int v : rule.universal_vars) {
        if (head_vars.count(v)) {
          return fail("universally quantified variable '" +
                      rule.var_names[v] + "' occurs in the head");
        }
      }
    }

    // Safety / range restriction on head variables.
    const std::set<int> binding =
        f.require_positive_binding ? PositivelyBoundVars(rule)
                                   : rule.BodyVars();
    for (int v : rule.HeadVars()) {
      if (binding.count(v)) continue;
      if (f.allow_invention) continue;  // an invention variable
      return fail(std::string("head variable '") + rule.var_names[v] +
                  (f.require_positive_binding
                       ? "' is not positively bound in the body"
                       : "' does not occur in the body"));
    }
  }

  if (dialect == Dialect::kStratified) {
    Stratification s = Stratify(program, catalog);
    if (!s.ok) return Status::NotStratifiable(s.error);
  }
  return Status::OK();
}

}  // namespace datalog
