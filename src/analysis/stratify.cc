#include "analysis/stratify.h"

#include <algorithm>
#include <functional>

namespace datalog {

DependencyGraph BuildDependencyGraph(const Program& program,
                                     const Catalog& catalog) {
  DependencyGraph graph;
  graph.num_preds = catalog.size();
  for (const Rule& rule : program.rules) {
    for (const Literal& head : rule.heads) {
      if (head.kind != Literal::Kind::kRelational) continue;
      for (const Literal& body : rule.body) {
        if (body.kind != Literal::Kind::kRelational) continue;
        graph.edges.push_back(
            {body.atom.pred, head.atom.pred, body.negative});
      }
    }
  }
  return graph;
}

std::vector<int> DependencyGraph::SccComponents() const {
  // Tarjan's algorithm, iterative to be safe on deep graphs.
  std::vector<std::vector<int>> adj(num_preds);
  for (const DepEdge& e : edges) adj[e.from].push_back(e.to);

  std::vector<int> index(num_preds, -1), lowlink(num_preds, 0),
      component(num_preds, -1);
  std::vector<bool> on_stack(num_preds, false);
  std::vector<int> stack;
  int next_index = 0, next_component = 0;

  struct Frame {
    int node;
    size_t edge;
  };
  for (int start = 0; start < num_preds; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> frames;
    frames.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < adj[f.node].size()) {
        int next = adj[f.node][f.edge++];
        if (index[next] == -1) {
          index[next] = lowlink[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back({next, 0});
        } else if (on_stack[next]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[next]);
        }
      } else {
        if (lowlink[f.node] == index[f.node]) {
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component[w] = next_component;
            if (w == f.node) break;
          }
          ++next_component;
        }
        int done = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          int parent = frames.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[done]);
        }
      }
    }
  }
  return component;
}

Stratification Stratify(const Program& program, const Catalog& catalog) {
  Stratification out;
  DependencyGraph graph = BuildDependencyGraph(program, catalog);
  std::vector<int> component = graph.SccComponents();

  // Recursion through negation: a negative edge within one SCC.
  for (const DepEdge& e : graph.edges) {
    if (e.negative && component[e.from] == component[e.to]) {
      out.error = "recursion through negation: predicate '" +
                  catalog.NameOf(e.to) + "' depends negatively on '" +
                  catalog.NameOf(e.from) + "' within a cycle";
      return out;
    }
  }

  // Longest path in the condensation, counting negative edges. Iterate to
  // fixpoint; the condensation is acyclic so #preds rounds suffice.
  std::vector<int> stratum(graph.num_preds, 0);
  bool changed = true;
  int rounds = 0;
  while (changed) {
    changed = false;
    if (++rounds > graph.num_preds + 2) {
      out.error = "internal: stratification did not converge";
      return out;
    }
    for (const DepEdge& e : graph.edges) {
      int need = stratum[e.from] + (e.negative ? 1 : 0);
      if (stratum[e.to] < need) {
        stratum[e.to] = need;
        changed = true;
      }
    }
  }

  out.ok = true;
  out.stratum_of_pred = stratum;
  out.num_strata = 0;
  for (PredId p : program.idb_preds) {
    out.num_strata = std::max(out.num_strata, stratum[p] + 1);
  }
  if (out.num_strata == 0) out.num_strata = 1;
  out.rules_by_stratum.assign(out.num_strata, {});
  for (size_t i = 0; i < program.rules.size(); ++i) {
    int s = 0;
    for (const Literal& head : program.rules[i].heads) {
      if (head.kind == Literal::Kind::kRelational) {
        s = std::max(s, stratum[head.atom.pred]);
      }
    }
    out.rules_by_stratum[s].push_back(static_cast<int>(i));
  }
  return out;
}

bool IsSemiPositive(const Program& program) {
  for (const Rule& rule : program.rules) {
    for (const Literal& body : rule.body) {
      if (body.kind == Literal::Kind::kRelational && body.negative &&
          program.IsIdb(body.atom.pred)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace datalog
