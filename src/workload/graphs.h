#ifndef UNCHAINED_WORKLOAD_GRAPHS_H_
#define UNCHAINED_WORKLOAD_GRAPHS_H_

#include <string>
#include <string_view>

#include "base/symbols.h"
#include "ra/instance.h"

namespace datalog {

/// Generates the graph instances used by the tests, examples and benches:
/// binary edge relations over integer-named nodes. Nodes are the interned
/// integers 0..n-1.
class GraphBuilder {
 public:
  /// Declares (or reuses) the binary edge predicate `edge_pred` in
  /// `catalog`. Both pointers must outlive the builder and any instance it
  /// produces.
  GraphBuilder(Catalog* catalog, SymbolTable* symbols,
               std::string_view edge_pred = "g");

  PredId edge_pred() const { return edge_pred_; }

  /// 0 -> 1 -> ... -> n-1.
  Instance Chain(int n);

  /// Chain plus the closing edge n-1 -> 0.
  Instance Cycle(int n);

  /// `m` distinct directed edges over n nodes, no self-loops, uniformly
  /// seeded. Isolated nodes do not appear anywhere: the paper's
  /// active-domain semantics only sees values occurring in facts.
  Instance RandomDigraph(int n, int m, uint64_t seed);

  /// Random DAG: m distinct edges i -> j with i < j.
  Instance RandomDag(int n, int m, uint64_t seed);

  /// k disjoint 2-cycles: (2i <-> 2i+1) for i in 0..k-1 — the orientation
  /// workload of Section 5.
  Instance TwoCycles(int k);

  Value Node(int i);

 private:
  Catalog* catalog_;
  SymbolTable* symbols_;
  PredId edge_pred_;
  Instance Empty();
  void Edge(Instance* db, int a, int b);
};

/// The exact `moves` instance of Example 3.2:
///   {<b,c>, <c,a>, <a,b>, <a,d>, <d,e>, <d,f>, <f,g>}
/// using the symbolic constants a..g, with the predicate named `moves`.
Instance PaperGameGraph(Catalog* catalog, SymbolTable* symbols);

/// A random game graph over n states and m moves (predicate `moves`).
Instance RandomGameGraph(Catalog* catalog, SymbolTable* symbols, int n, int m,
                         uint64_t seed);

}  // namespace datalog

#endif  // UNCHAINED_WORKLOAD_GRAPHS_H_
