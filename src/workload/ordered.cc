#include "workload/ordered.h"

namespace datalog {

Status AddOrderRelations(Catalog* catalog, const std::vector<Value>& universe,
                         Instance* db) {
  Result<PredId> succ = catalog->Declare("succ", 2);
  if (!succ.ok()) return succ.status();
  Result<PredId> lt = catalog->Declare("lt", 2);
  if (!lt.ok()) return lt.status();
  Result<PredId> first = catalog->Declare("first", 1);
  if (!first.ok()) return first.status();
  Result<PredId> last = catalog->Declare("last", 1);
  if (!last.ok()) return last.status();

  if (universe.empty()) return Status::OK();
  for (size_t i = 0; i + 1 < universe.size(); ++i) {
    db->Insert(*succ, {universe[i], universe[i + 1]});
  }
  for (size_t i = 0; i < universe.size(); ++i) {
    for (size_t j = i + 1; j < universe.size(); ++j) {
      db->Insert(*lt, {universe[i], universe[j]});
    }
  }
  db->Insert(*first, {universe.front()});
  db->Insert(*last, {universe.back()});
  return Status::OK();
}

Instance MakeEvennessInstance(Catalog* catalog, SymbolTable* symbols, int n,
                              bool with_order) {
  Result<PredId> r = catalog->Declare("r", 1);
  Instance db(catalog);
  if (!r.ok()) return db;
  std::vector<Value> universe;
  universe.reserve(n);
  for (int i = 0; i < n; ++i) {
    Value v = symbols->InternInt(i);
    universe.push_back(v);
    db.Insert(*r, {v});
  }
  if (with_order) {
    Status st = AddOrderRelations(catalog, universe, &db);
    (void)st;  // declarations cannot conflict here
  }
  return db;
}

}  // namespace datalog
