#include "workload/graphs.h"

#include <cassert>
#include <unordered_set>

#include "base/rng.h"

namespace datalog {

GraphBuilder::GraphBuilder(Catalog* catalog, SymbolTable* symbols,
                           std::string_view edge_pred)
    : catalog_(catalog), symbols_(symbols) {
  Result<PredId> pred = catalog->Declare(edge_pred, 2);
  assert(pred.ok() && "edge predicate declared with a different arity");
  edge_pred_ = *pred;
}

Value GraphBuilder::Node(int i) { return symbols_->InternInt(i); }

Instance GraphBuilder::Empty() { return Instance(catalog_); }

void GraphBuilder::Edge(Instance* db, int a, int b) {
  db->Insert(edge_pred_, {Node(a), Node(b)});
}

Instance GraphBuilder::Chain(int n) {
  Instance db = Empty();
  for (int i = 0; i + 1 < n; ++i) Edge(&db, i, i + 1);
  return db;
}

Instance GraphBuilder::Cycle(int n) {
  Instance db = Chain(n);
  if (n > 1) Edge(&db, n - 1, 0);
  return db;
}

Instance GraphBuilder::RandomDigraph(int n, int m, uint64_t seed) {
  assert(n >= 2);
  assert(static_cast<int64_t>(m) <= static_cast<int64_t>(n) * (n - 1));
  Instance db = Empty();
  Rng rng(seed);
  std::unordered_set<int64_t> used;
  while (static_cast<int>(used.size()) < m) {
    int a = static_cast<int>(rng.Uniform(n));
    int b = static_cast<int>(rng.Uniform(n));
    if (a == b) continue;
    if (!used.insert(static_cast<int64_t>(a) * n + b).second) continue;
    Edge(&db, a, b);
  }
  return db;
}

Instance GraphBuilder::RandomDag(int n, int m, uint64_t seed) {
  assert(n >= 2);
  assert(static_cast<int64_t>(m) <=
         static_cast<int64_t>(n) * (n - 1) / 2);
  Instance db = Empty();
  Rng rng(seed);
  std::unordered_set<int64_t> used;
  while (static_cast<int>(used.size()) < m) {
    int a = static_cast<int>(rng.Uniform(n));
    int b = static_cast<int>(rng.Uniform(n));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (!used.insert(static_cast<int64_t>(a) * n + b).second) continue;
    Edge(&db, a, b);
  }
  return db;
}

Instance GraphBuilder::TwoCycles(int k) {
  Instance db = Empty();
  for (int i = 0; i < k; ++i) {
    Edge(&db, 2 * i, 2 * i + 1);
    Edge(&db, 2 * i + 1, 2 * i);
  }
  return db;
}

Instance PaperGameGraph(Catalog* catalog, SymbolTable* symbols) {
  Result<PredId> moves = catalog->Declare("moves", 2);
  assert(moves.ok());
  Instance db(catalog);
  auto v = [&](const char* name) { return symbols->Intern(name); };
  const std::pair<const char*, const char*> edges[] = {
      {"b", "c"}, {"c", "a"}, {"a", "b"}, {"a", "d"},
      {"d", "e"}, {"d", "f"}, {"f", "g"}};
  for (const auto& [from, to] : edges) {
    db.Insert(*moves, {v(from), v(to)});
  }
  return db;
}

Instance RandomGameGraph(Catalog* catalog, SymbolTable* symbols, int n, int m,
                         uint64_t seed) {
  GraphBuilder builder(catalog, symbols, "moves");
  return builder.RandomDigraph(n, m, seed);
}

}  // namespace datalog
