#ifndef UNCHAINED_WORKLOAD_ORDERED_H_
#define UNCHAINED_WORKLOAD_ORDERED_H_

#include <vector>

#include "base/result.h"
#include "base/symbols.h"
#include "ra/instance.h"

namespace datalog {

/// Makes `db` an *ordered database* (Section 4.5): adds
///   succ(x, y) — y immediately follows x in `universe`'s order,
///   lt(x, y)   — x strictly precedes y,
///   first(x)   — the minimum element, and
///   last(x)    — the maximum element
/// over the given universe (typically the active domain). With these,
/// stratified / inflationary / well-founded Datalog¬ express exactly
/// db-ptime, and semi-positive Datalog¬ does too thanks to the explicit
/// min/max constants (Theorem 4.7).
Status AddOrderRelations(Catalog* catalog, const std::vector<Value>& universe,
                         Instance* db);

/// The evenness workload (Section 4.4): a unary relation `r` with n
/// elements; with `with_order`, the order relations above over those
/// elements. The evenness query — inexpressible by every deterministic
/// language in the family on unordered inputs — becomes expressible.
Instance MakeEvennessInstance(Catalog* catalog, SymbolTable* symbols, int n,
                              bool with_order);

}  // namespace datalog

#endif  // UNCHAINED_WORKLOAD_ORDERED_H_
