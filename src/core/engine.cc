#include "core/engine.h"

#include "analysis/validate.h"
#include "ast/parser.h"
#include "eval/naive.h"
#include "eval/seminaive.h"
#include "eval/stratified.h"

namespace datalog {

Result<Program> Engine::Parse(std::string_view text) {
  return ParseProgram(text, &catalog_, &symbols_);
}

Status Engine::AddFacts(std::string_view text, Instance* db) {
  return ParseFacts(text, &catalog_, &symbols_, db);
}

Status Engine::Validate(const Program& program, Dialect dialect) const {
  return ValidateProgram(program, catalog_, dialect);
}

Result<Instance> Engine::MinimumModel(const Program& program,
                                      const Instance& input,
                                      EvalStats* stats) const {
  DATALOG_RETURN_IF_ERROR(Validate(program, Dialect::kDatalog));
  return SemiNaiveDatalog(program, input, options_, stats);
}

Result<Instance> Engine::MinimumModelNaive(const Program& program,
                                           const Instance& input,
                                           EvalStats* stats) const {
  DATALOG_RETURN_IF_ERROR(Validate(program, Dialect::kDatalog));
  return NaiveLeastFixpoint(program, input, /*fixed_negation=*/nullptr,
                            options_, stats);
}

Result<Instance> Engine::Stratified(const Program& program,
                                    const Instance& input,
                                    EvalStats* stats) const {
  DATALOG_RETURN_IF_ERROR(Validate(program, Dialect::kStratified));
  return StratifiedSemantics(program, catalog_, input, options_, stats);
}

Result<WellFoundedModel> Engine::WellFounded(const Program& program,
                                             const Instance& input) const {
  DATALOG_RETURN_IF_ERROR(Validate(program, Dialect::kDatalogNeg));
  return WellFoundedSemantics(program, input, options_);
}

Result<InflationaryResult> Engine::Inflationary(
    const Program& program, const Instance& input,
    const StageObserver& observer) const {
  DATALOG_RETURN_IF_ERROR(Validate(program, Dialect::kDatalogNeg));
  return InflationaryFixpoint(program, input, options_, observer);
}

Result<NonInflationaryResult> Engine::NonInflationary(
    const Program& program, const Instance& input,
    const NonInflationaryOptions& options) const {
  DATALOG_RETURN_IF_ERROR(Validate(program, Dialect::kDatalogNegNeg));
  return NonInflationaryFixpoint(program, input, options);
}

Result<InventionResult> Engine::Invention(const Program& program,
                                          const Instance& input) {
  DATALOG_RETURN_IF_ERROR(Validate(program, Dialect::kDatalogNew));
  return InventionFixpoint(program, input, &symbols_, options_);
}

Result<Instance> Engine::NondetRun(const Program& program, Dialect dialect,
                                   const Instance& input, uint64_t seed,
                                   const NondetOptions& options) {
  if (!IsNondeterministic(dialect)) {
    return Status::Unsupported("NondetRun requires an N-Datalog dialect");
  }
  DATALOG_RETURN_IF_ERROR(Validate(program, dialect));
  NondetOptions opts = options;
  if (dialect == Dialect::kNDatalogNew) opts.allow_invention = true;
  NondetEvaluator evaluator(&program, &catalog_);
  return evaluator.RunOnce(input, seed, &symbols_, opts);
}

Result<EffectSet> Engine::NondetEnumerate(const Program& program,
                                          Dialect dialect,
                                          const Instance& input,
                                          const NondetOptions& options) const {
  if (!IsNondeterministic(dialect)) {
    return Status::Unsupported(
        "NondetEnumerate requires an N-Datalog dialect");
  }
  DATALOG_RETURN_IF_ERROR(Validate(program, dialect));
  NondetEvaluator evaluator(&program, &catalog_);
  return evaluator.Enumerate(input, options);
}

Result<PossCert> Engine::NondetPossCert(const Program& program,
                                        Dialect dialect, const Instance& input,
                                        const NondetOptions& options) const {
  Result<EffectSet> effects =
      NondetEnumerate(program, dialect, input, options);
  if (!effects.ok()) return effects.status();
  return ComputePossCert(*effects, catalog_);
}

}  // namespace datalog
