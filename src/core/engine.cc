#include "core/engine.h"

#include "analysis/validate.h"
#include "ast/parser.h"
#include "eval/context.h"
#include "eval/naive.h"
#include "eval/seminaive.h"
#include "eval/stratified.h"

namespace datalog {

Result<Program> Engine::Parse(std::string_view text) {
  return ParseProgram(text, &catalog_, &symbols_);
}

Status Engine::AddFacts(std::string_view text, Instance* db) {
  return ParseFacts(text, &catalog_, &symbols_, db);
}

Status Engine::Validate(const Program& program, Dialect dialect) const {
  return ValidateProgram(program, catalog_, dialect);
}

Result<Instance> Engine::MinimumModel(const Program& program,
                                      const Instance& input,
                                      EvalStats* stats) const {
  DATALOG_RETURN_IF_ERROR(Validate(program, Dialect::kDatalog));
  EvalContext ctx(options_);
  Result<Instance> out = SemiNaiveDatalog(program, input, &ctx);
  ctx.Finalize();
  last_run_stats_ = ctx.stats;
  if (stats != nullptr) *stats = ctx.stats;
  return out;
}

Result<Instance> Engine::MinimumModelNaive(const Program& program,
                                           const Instance& input,
                                           EvalStats* stats) const {
  DATALOG_RETURN_IF_ERROR(Validate(program, Dialect::kDatalog));
  EvalContext ctx(options_);
  Result<Instance> out =
      NaiveLeastFixpoint(program, input, /*fixed_negation=*/nullptr, &ctx);
  ctx.Finalize();
  last_run_stats_ = ctx.stats;
  if (stats != nullptr) *stats = ctx.stats;
  return out;
}

Result<Instance> Engine::Stratified(const Program& program,
                                    const Instance& input,
                                    EvalStats* stats) const {
  DATALOG_RETURN_IF_ERROR(Validate(program, Dialect::kStratified));
  EvalContext ctx(options_);
  Result<Instance> out = StratifiedSemantics(program, catalog_, input, &ctx);
  ctx.Finalize();
  last_run_stats_ = ctx.stats;
  if (stats != nullptr) *stats = ctx.stats;
  return out;
}

Result<WellFoundedModel> Engine::WellFounded(const Program& program,
                                             const Instance& input) const {
  DATALOG_RETURN_IF_ERROR(Validate(program, Dialect::kDatalogNeg));
  EvalContext ctx(options_);
  Result<WellFoundedModel> out = WellFoundedSemantics(program, input, &ctx);
  ctx.Finalize();
  last_run_stats_ = ctx.stats;
  return out;
}

Result<InflationaryResult> Engine::Inflationary(
    const Program& program, const Instance& input,
    const StageObserver& observer) const {
  DATALOG_RETURN_IF_ERROR(Validate(program, Dialect::kDatalogNeg));
  EvalContext ctx(options_);
  Result<InflationaryResult> out =
      InflationaryFixpoint(program, input, &ctx, observer);
  ctx.Finalize();
  last_run_stats_ = ctx.stats;
  return out;
}

Result<NonInflationaryResult> Engine::NonInflationary(
    const Program& program, const Instance& input,
    const NonInflationaryOptions& options) const {
  DATALOG_RETURN_IF_ERROR(Validate(program, Dialect::kDatalogNegNeg));
  EvalContext ctx(options.eval);
  Result<NonInflationaryResult> out =
      NonInflationaryFixpoint(program, input, options, &ctx);
  ctx.Finalize();
  last_run_stats_ = ctx.stats;
  return out;
}

Result<InventionResult> Engine::Invention(const Program& program,
                                          const Instance& input) {
  DATALOG_RETURN_IF_ERROR(Validate(program, Dialect::kDatalogNew));
  EvalContext ctx(options_);
  Result<InventionResult> out =
      InventionFixpoint(program, input, &symbols_, &ctx);
  ctx.Finalize();
  last_run_stats_ = ctx.stats;
  return out;
}

Result<Instance> Engine::NondetRun(const Program& program, Dialect dialect,
                                   const Instance& input, uint64_t seed,
                                   const NondetOptions& options) {
  if (!IsNondeterministic(dialect)) {
    return Status::Unsupported("NondetRun requires an N-Datalog dialect");
  }
  DATALOG_RETURN_IF_ERROR(Validate(program, dialect));
  NondetOptions opts = options;
  if (dialect == Dialect::kNDatalogNew) opts.allow_invention = true;
  NondetEvaluator evaluator(&program, &catalog_);
  Result<Instance> out = evaluator.RunOnce(input, seed, &symbols_, opts);
  last_run_stats_ = evaluator.last_stats();
  return out;
}

Result<EffectSet> Engine::NondetEnumerate(const Program& program,
                                          Dialect dialect,
                                          const Instance& input,
                                          const NondetOptions& options) const {
  if (!IsNondeterministic(dialect)) {
    return Status::Unsupported(
        "NondetEnumerate requires an N-Datalog dialect");
  }
  DATALOG_RETURN_IF_ERROR(Validate(program, dialect));
  NondetEvaluator evaluator(&program, &catalog_);
  Result<EffectSet> out = evaluator.Enumerate(input, options);
  last_run_stats_ = evaluator.last_stats();
  return out;
}

Result<PossCert> Engine::NondetPossCert(const Program& program,
                                        Dialect dialect, const Instance& input,
                                        const NondetOptions& options) const {
  Result<EffectSet> effects =
      NondetEnumerate(program, dialect, input, options);
  if (!effects.ok()) return effects.status();
  return ComputePossCert(*effects, catalog_);
}

}  // namespace datalog
