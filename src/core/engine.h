#ifndef UNCHAINED_CORE_ENGINE_H_
#define UNCHAINED_CORE_ENGINE_H_

#include <string_view>

#include "ast/ast.h"
#include "ast/dialect.h"
#include "base/result.h"
#include "base/symbols.h"
#include "eval/common.h"
#include "eval/inflationary.h"
#include "eval/invention.h"
#include "eval/nondet.h"
#include "eval/noninflationary.h"
#include "eval/wellfounded.h"
#include "ra/instance.h"

namespace datalog {

/// The public facade of the library: one object owning the catalog and the
/// symbol table, with parse / validate / evaluate entry points for every
/// language in the family.
///
/// Typical use (the transitive-closure quickstart):
///
///   Engine engine;
///   auto program = engine.Parse(
///       "t(X, Y) :- g(X, Y).\n"
///       "t(X, Y) :- g(X, Z), t(Z, Y).\n");
///   Instance db = engine.NewInstance();
///   engine.AddFacts("g(a, b). g(b, c).", &db);
///   auto model = engine.MinimumModel(*program, db);
///   // model->Rel(engine.catalog().Find("t")) now holds the closure.
///
/// Each evaluation method validates the program against the dialect it
/// implements before running (so e.g. routing the non-stratifiable win
/// program to `Stratified` returns kNotStratifiable rather than garbage).
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  /// Budgets applied by all deterministic evaluation methods.
  EvalOptions& options() { return options_; }

  /// Stats of the most recent evaluation run through this facade
  /// (whatever entry point it used): rounds, facts, instantiations,
  /// index-maintenance counters, per-rule counters and wall-clock timings.
  /// Overwritten by every evaluation call.
  const EvalStats& LastRunStats() const { return last_run_stats_; }

  /// An empty instance over this engine's catalog.
  Instance NewInstance() const { return Instance(&catalog_); }

  /// Parses a program (union syntax of all dialects; see parser.h).
  Result<Program> Parse(std::string_view text);

  /// Parses ground facts into `db`.
  Status AddFacts(std::string_view text, Instance* db);

  /// Validates `program` against `dialect` (see analysis/validate.h).
  Status Validate(const Program& program, Dialect dialect) const;

  // -- Deterministic semantics ----------------------------------------

  /// Minimum model of positive Datalog (Section 3.1), semi-naive.
  Result<Instance> MinimumModel(const Program& program, const Instance& input,
                                EvalStats* stats = nullptr) const;

  /// Minimum model computed by the naive algorithm (baseline for the
  /// semi-naive comparison bench).
  Result<Instance> MinimumModelNaive(const Program& program,
                                     const Instance& input,
                                     EvalStats* stats = nullptr) const;

  /// Stratified semantics of Datalog¬ (Section 3.2). Accepts semi-positive
  /// programs too.
  Result<Instance> Stratified(const Program& program, const Instance& input,
                              EvalStats* stats = nullptr) const;

  /// Well-founded (3-valued) semantics of Datalog¬ (Section 3.3).
  Result<WellFoundedModel> WellFounded(const Program& program,
                                       const Instance& input) const;

  /// Inflationary fixpoint semantics of Datalog¬ (Section 4.1).
  Result<InflationaryResult> Inflationary(
      const Program& program, const Instance& input,
      const StageObserver& observer = nullptr) const;

  /// Noninflationary semantics of Datalog¬¬ (Section 4.2).
  Result<NonInflationaryResult> NonInflationary(
      const Program& program, const Instance& input,
      const NonInflationaryOptions& options = {}) const;

  /// Inflationary semantics of Datalog¬new (Section 4.3).
  Result<InventionResult> Invention(const Program& program,
                                    const Instance& input);

  // -- Nondeterministic semantics (Section 5) -------------------------

  /// One seeded computation of an N-Datalog program.
  Result<Instance> NondetRun(const Program& program, Dialect dialect,
                             const Instance& input, uint64_t seed,
                             const NondetOptions& options = {});

  /// Every image of `input` under eff(P) (Definition 5.2).
  Result<EffectSet> NondetEnumerate(const Program& program, Dialect dialect,
                                    const Instance& input,
                                    const NondetOptions& options = {}) const;

  /// poss / cert semantics (Definition 5.10) over the full effect set.
  Result<PossCert> NondetPossCert(const Program& program, Dialect dialect,
                                  const Instance& input,
                                  const NondetOptions& options = {}) const;

 private:
  Catalog catalog_;
  SymbolTable symbols_;
  EvalOptions options_;
  /// Mutable so the const evaluation entry points can record their stats.
  mutable EvalStats last_run_stats_;
};

}  // namespace datalog

#endif  // UNCHAINED_CORE_ENGINE_H_
