#include "store/recover.h"

#include <errno.h>
#include <string.h>
#include <unistd.h>

#include <vector>

#include "eval/test_hooks.h"
#include "server/session.h"
#include "store/snapshotter.h"
#include "store/wal.h"

namespace datalog {

namespace internal {
bool g_store_skip_truncate = false;
}  // namespace internal

namespace store {

Result<Recovered> Recover(const std::string& dir, const Program& program,
                          const Catalog& catalog, SymbolTable* symbols,
                          const Instance& initial_base,
                          const EvalOptions& options) {
  Recovered out;

  bool have_snapshot = false;
  Result<SnapshotData> snap = LoadSnapshot(dir, &have_snapshot);
  if (!snap.ok()) return snap.status();

  Instance base(&catalog);
  int64_t expected_epoch = 0;
  if (have_snapshot) {
    // The snapshot's raw value words carry the *writer's* interning
    // order. Restore into a scratch instance, then rebuild through this
    // process's symbol table via the recorded spellings — a recovering
    // process that interned in a different order (or nothing yet) ends
    // up with semantically identical facts under its own Value ids.
    Instance scratch(&catalog);
    DATALOG_RETURN_IF_ERROR(scratch.RestoreSnapshot(snap->base_bytes));
    std::vector<Value> remap;
    remap.reserve(snap->symbols.size());
    for (const std::string& spelling : snap->symbols) {
      remap.push_back(symbols->Intern(spelling));
    }
    for (const auto& [pred, rel] : scratch.relations()) {
      for (const Tuple& tuple : rel.Sorted()) {
        Tuple mapped;
        mapped.reserve(tuple.size());
        for (Value v : tuple) {
          if (v < 0 || static_cast<size_t>(v) >= remap.size()) {
            return Status::Internal(
                "snapshot value " + std::to_string(v) +
                " outside the recorded symbol table (" +
                std::to_string(remap.size()) + " spellings)");
          }
          mapped.push_back(remap[static_cast<size_t>(v)]);
        }
        base.Insert(pred, mapped);
      }
    }
    expected_epoch = snap->epoch;
    out.from_snapshot = true;
  } else {
    base = initial_base;
  }

  Result<std::unique_ptr<IncrementalView>> view =
      IncrementalView::Create(program, catalog, base, options);
  if (!view.ok()) return view.status();

  const std::string wal_path = WalPath(dir);
  Result<WalScan> scan = ScanWal(wal_path);
  if (!scan.ok()) return scan.status();
  out.wal_was_clean = scan->clean;
  out.detail = scan->detail;

  for (const WalRecord& record : scan->records) {
    if (record.epoch <= expected_epoch) {
      // Already covered by the snapshot: a compaction crashed between
      // rename and truncate. Benign, skip.
      ++out.skipped;
      continue;
    }
    if (record.epoch != expected_epoch + 1) {
      return Status::Internal(
          "wal epoch gap: have " + std::to_string(expected_epoch) +
          ", next record is epoch " + std::to_string(record.epoch));
    }
    std::vector<FactUpdate> updates;
    if (!server::ParseUpdateTokens(record.update_tokens, catalog, symbols,
                                   &updates)) {
      return Status::Internal("wal record for epoch " +
                              std::to_string(record.epoch) +
                              " holds unparseable update tokens");
    }
    DATALOG_RETURN_IF_ERROR((*view)->ApplyBatch(updates));
    expected_epoch = record.epoch;
    ++out.replayed;
  }

  if (!scan->clean && !internal::g_store_skip_truncate) {
    // Cut the torn/corrupt tail so the next writer appends onto a log
    // every byte of which is a valid record.
    if (::truncate(wal_path.c_str(), static_cast<off_t>(scan->valid_end)) !=
        0) {
      return Status::Internal("wal tail truncate: " +
                              std::string(::strerror(errno)));
    }
    out.truncated_tail = true;
  }

  out.view = std::move(*view);
  out.epoch = expected_epoch;
  return out;
}

}  // namespace store
}  // namespace datalog
