#ifndef UNCHAINED_STORE_RECOVER_H_
#define UNCHAINED_STORE_RECOVER_H_

// Crash recovery (docs/durability.md#recovery): rebuild the server's
// materialized view from a store directory.
//
//   1. Load the newest valid snapshot (snapshotter.h); fall back to the
//      caller's initial base when none exists. A present-but-corrupt
//      snapshot fails recovery loudly — the rename protocol never
//      publishes a partial file, so corruption means external damage.
//   2. IncrementalView::Create over that base re-derives the model and
//      re-seeds the provenance/count machinery.
//   3. Scan the WAL; skip records at or below the snapshot epoch
//      (a compaction that crashed between rename and truncate leaves
//      them behind), then ApplyBatch each surviving record in order,
//      enforcing epoch contiguity.
//   4. A torn or corrupt tail ends the replay; the invalid bytes are
//      truncated away so the next writer appends onto a clean log
//      (skipped under internal::g_store_skip_truncate — the planted bug
//      oracle pair #11 exists to catch).
//
// Recovery is idempotent and deterministic: running it twice on the
// same directory yields byte-identical model/base bytes and the same
// recovered epoch — oracle pair #11 checks exactly that, plus equality
// against a sequential replay of the surviving commit prefix.

#include <cstdint>
#include <memory>
#include <string>

#include "base/result.h"
#include "base/symbols.h"
#include "eval/common.h"
#include "eval/incremental.h"
#include "ra/catalog.h"
#include "ra/instance.h"

namespace datalog {
namespace store {

struct Recovered {
  /// The rebuilt view, current through `epoch`.
  std::unique_ptr<IncrementalView> view;
  /// Highest epoch recovered (0 = initial state only).
  int64_t epoch = 0;
  /// WAL records replayed through ApplyBatch (after snapshot skips).
  int64_t replayed = 0;
  /// Records skipped because a snapshot already covered their epoch.
  int64_t skipped = 0;
  bool from_snapshot = false;
  /// Whether the WAL scanned clean *before* any tail repair.
  bool wal_was_clean = true;
  /// Whether a torn/corrupt tail was truncated away.
  bool truncated_tail = false;
  /// Scan diagnostics when the tail was dirty.
  std::string detail;
};

/// Rebuilds the view for `dir`. `initial_base` is the base instance the
/// server was originally created with (used when no snapshot exists);
/// `symbols` receives any integers interned while parsing replayed
/// update tokens. Fails on corrupt snapshots, epoch gaps, or records the
/// view refuses — all states the durability protocol cannot legally
/// produce.
Result<Recovered> Recover(const std::string& dir, const Program& program,
                          const Catalog& catalog, SymbolTable* symbols,
                          const Instance& initial_base,
                          const EvalOptions& options = EvalOptions());

}  // namespace store
}  // namespace datalog

#endif  // UNCHAINED_STORE_RECOVER_H_
