#include "store/store.h"

#include <errno.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>

namespace datalog {
namespace store {

namespace {

/// mkdir -p, restricted to the simple absolute/relative paths tests and
/// tools pass (no symlink games).
Status MakeDirs(const std::string& dir) {
  if (dir.empty()) return Status::Internal("store dir is empty");
  std::string prefix;
  size_t pos = 0;
  while (pos <= dir.size()) {
    size_t slash = dir.find('/', pos);
    if (slash == std::string::npos) slash = dir.size();
    prefix = dir.substr(0, slash);
    pos = slash + 1;
    if (prefix.empty()) continue;  // Leading '/'.
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal("mkdir " + prefix + ": " + ::strerror(errno));
    }
  }
  return Status::OK();
}

}  // namespace

DurableStore::DurableStore(StoreOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    const StoreOptions& options) {
  DATALOG_RETURN_IF_ERROR(MakeDirs(options.dir));
  std::unique_ptr<DurableStore> s(new DurableStore(options));
  WalOptions wal_options;
  wal_options.sync_every = s->options_.sync_every;
  wal_options.simulate_sync = s->options_.simulate_sync;
  wal_options.faults = &s->options_.faults;
  Result<std::unique_ptr<Wal>> wal =
      Wal::Open(WalPath(s->options_.dir), wal_options);
  if (!wal.ok()) return wal.status();
  s->wal_ = std::move(*wal);
  SnapshotterOptions snap_options;
  snap_options.simulate_sync = s->options_.simulate_sync;
  snap_options.faults = &s->options_.faults;
  s->snapshotter_.reset(new Snapshotter(s->options_.dir, snap_options));
  return s;
}

Status DurableStore::AppendCommit(int64_t epoch,
                                  const std::string& update_tokens) {
  if (crashed()) {
    return Status::Internal("store crashed (commit refused)");
  }
  // Recorded before the WAL can crash: the oracle's replay needs every
  // batch the store tried to persist, acknowledged or not.
  attempts_.push_back(CommitAttempt{epoch, update_tokens});
  DATALOG_RETURN_IF_ERROR(wal_->Append(epoch, update_tokens));
  ++commits_since_snapshot_;
  return Status::OK();
}

Status DurableStore::MaybeCompact(int64_t epoch,
                                  const std::string& base_bytes,
                                  std::vector<std::string> symbols,
                                  bool force) {
  if (crashed()) {
    return Status::Internal("store crashed (compaction refused)");
  }
  if (!force) {
    if (options_.snapshot_every <= 0) return Status::OK();
    if (commits_since_snapshot_ < options_.snapshot_every) {
      return Status::OK();
    }
  }
  SnapshotData snap;
  snap.epoch = epoch;
  snap.wal_offset = wal_->size();
  snap.base_bytes = base_bytes;
  snap.symbols = std::move(symbols);
  const int64_t writes_before = snapshotter_->writes();
  const Status status = snapshotter_->Write(snap);
  if (snapshotter_->writes() > writes_before) {
    // The rename landed even if a crash fired right after it — the
    // snapshot is durable and counts toward durable_epoch().
    last_snapshot_epoch_ = epoch;
    commits_since_snapshot_ = 0;
  }
  DATALOG_RETURN_IF_ERROR(status);
  // Everything at or below the snapshot epoch is now redundant. A crash
  // between rename and this truncate leaves stale records behind;
  // recovery skips them by epoch, so the window is benign.
  return wal_->Truncate(0);
}

Status DurableStore::Flush() {
  if (crashed()) return Status::Internal("store crashed (flush refused)");
  return wal_->Sync();
}

}  // namespace store
}  // namespace datalog
