#ifndef UNCHAINED_STORE_SNAPSHOTTER_H_
#define UNCHAINED_STORE_SNAPSHOTTER_H_

// Compacted snapshots (docs/durability.md#snapshots): a single
// `snapshot.bin` per store directory holding the canonical
// `Instance::SerializeSnapshot` bytes of the *base* instance as of a
// committed epoch, plus the WAL offset that commit ended at:
//
//   u32 magic 'UDSN' | u32 version | i64 epoch | i64 wal_offset |
//   u32 base_len | base bytes |
//   u32 sym_count | (u32 len | spelling bytes)* | u32 crc32(body)
//
// The spelling section is the writer's SymbolTable in value order:
// SerializeSnapshot stores raw interned Value ids, which depend on the
// interning order of the process that wrote them, so a *different*
// process recovering the file must remap every value through its own
// table (old id i → Intern(spelling[i])). Base instances hold only
// parsed constants — never Invent()ed values, which exist only in
// derived models — so spelling round-trips are total.
//
// The write protocol is the classic atomic-replace dance: write
// `snapshot.tmp` in full, fsync it, rename onto `snapshot.bin`, fsync
// the directory, and only then truncate the WAL. A crash at any step
// leaves either the old snapshot (tmp is garbage recovery ignores) or
// the new one (recovery skips WAL records at or below its epoch, so a
// missed truncation is benign). Both windows are schedule crash points
// (kSnapBeforeRename / kSnapAfterRename).
//
// The base — not the derived model — is snapshotted: recovery rebuilds
// the view with IncrementalView::Create(program, base), which re-derives
// the model and re-seeds the provenance/count machinery the view needs
// for future maintenance. The model bytes are checked against replay by
// the oracle, not trusted from disk.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "store/fault.h"

namespace datalog {
namespace store {

/// File layout inside a store directory.
std::string WalPath(const std::string& dir);
std::string SnapshotPath(const std::string& dir);
std::string SnapshotTmpPath(const std::string& dir);

struct SnapshotData {
  /// Epoch the base bytes are current through.
  int64_t epoch = 0;
  /// WAL size when this snapshot was cut (diagnostics; recovery skips by
  /// epoch, not offset).
  int64_t wal_offset = 0;
  /// Instance::SerializeSnapshot of the base instance.
  std::string base_bytes;
  /// The writer's symbol spellings in value order (index = Value id):
  /// the decoder key for base_bytes' raw value words.
  std::vector<std::string> symbols;
};

struct SnapshotterOptions {
  /// Skip real fsyncs (fuzz mode) — see WalOptions::simulate_sync.
  bool simulate_sync = false;
  /// Optional crash schedule shared with the WAL; not owned, may be null.
  DurabilityFaultSchedule* faults = nullptr;
};

/// Writes snapshots for one store directory. Like the WAL, a schedule
/// crash — or a real I/O failure anywhere in the write protocol — makes
/// the snapshotter permanently refuse further writes.
class Snapshotter {
 public:
  Snapshotter(std::string dir, const SnapshotterOptions& options);

  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  /// Runs the tmp → fsync → rename protocol. On kSnapBeforeRename the
  /// finished tmp file is left behind (never renamed); on
  /// kSnapAfterRename the new snapshot.bin is in place but the caller's
  /// WAL truncation must not happen.
  Status Write(const SnapshotData& snap);

  bool crashed() const { return crashed_; }
  int64_t writes() const { return writes_; }

 private:
  std::string dir_;
  SnapshotterOptions options_;
  bool crashed_ = false;
  int64_t writes_ = 0;
};

/// Loads and validates `snapshot.bin`. `found=false` (with OK status)
/// when the file does not exist — a fresh store. A present-but-invalid
/// snapshot is an error: under the modeled fault schedule the rename
/// protocol never publishes a partial snapshot, so corruption here means
/// a store bug or external damage, and recovery must fail loudly rather
/// than silently restart empty.
Result<SnapshotData> LoadSnapshot(const std::string& dir, bool* found);

}  // namespace store
}  // namespace datalog

#endif  // UNCHAINED_STORE_SNAPSHOTTER_H_
