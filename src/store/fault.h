#ifndef UNCHAINED_STORE_FAULT_H_
#define UNCHAINED_STORE_FAULT_H_

// Seeded fault injection for the durability layer (docs/durability.md
// #fault-schedule). Every failure mode a `kill -9` (or a torn page) can
// inflict on the WAL + snapshot files is modeled as a *crash point* the
// store passes through on its write paths; a `DurabilityFaultSchedule`
// names the hit at which the simulated crash fires and how the unsynced
// tail is mutilated when it does:
//
//   * crash-before-fsync  — the record bytes are in the page cache only;
//                           the schedule may tear them (keep a prefix of
//                           the final record) or flip a bit.
//   * crash-after-fsync-before-rename — a finished snapshot.tmp never
//                           becomes snapshot.bin; recovery must fall back
//                           to the previous snapshot plus the full log.
//   * torn tail writes    — the final append is cut at `torn_keep` bytes.
//   * bit flips           — one bit of the unsynced tail region is
//                           inverted, so a checksum stops the replay.
//
// The schedule is deterministic: (spec, write sequence) fully determines
// where the crash lands and what the directory looks like afterwards,
// which is what lets oracle pair #11 (crash-recover-vs-replay) re-run and
// the shrinker minimize (script, crash point) repros. After the crash
// fires the store is dead: every later append/sync/compact fails, the
// same way a killed process stops writing.

#include <cstdint>
#include <string>

namespace datalog {
namespace store {

/// Where the store is standing when it asks "do I crash here?". The hit
/// counter spans *all* points, so a schedule's `crash_at` indexes one
/// global sequence of durability side effects.
enum class CrashPoint : uint8_t {
  /// About to write a WAL record. A crash here tears the record at
  /// `torn_keep` bytes (-1 keeps all of it: written but unacknowledged).
  kWalAppend = 0,
  /// Record fully written, fsync not yet issued — the classic
  /// crash-before-fsync window. The unsynced tail survives only as well
  /// as the schedule's `flip_bit` lets it.
  kWalBeforeFsync = 1,
  /// snapshot.tmp written and fsynced, rename to snapshot.bin pending.
  kSnapBeforeRename = 2,
  /// snapshot.bin renamed into place, WAL truncation pending — recovery
  /// must dedup replayed epochs against the snapshot.
  kSnapAfterRename = 3,
};

const char* CrashPointName(CrashPoint p);

/// One seeded crash schedule, parsed from a case's `%!` line (see
/// Parse/FormatDurabilitySpec) or built directly by tests. Plain data —
/// the store mutates only the runtime fields at the bottom.
struct DurabilityFaultSchedule {
  /// Crash on the Nth crash-point hit (1-based). <= 0 never crashes.
  int64_t crash_at = -1;
  /// When the crash lands on kWalAppend: bytes of the final record kept
  /// on disk (clamped to the record size). -1 writes the whole record.
  int torn_keep = -1;
  /// When >= 0: after the crash, flip bit (flip_bit % 8) of byte
  /// (flip_bit / 8 % tail_len) inside the unsynced WAL tail. -1 disables.
  int flip_bit = -1;

  // -- Runtime state (owned by the store once installed) ----------------
  int64_t hits = 0;
  bool crashed = false;
  /// The point the crash actually fired at (diagnostics).
  CrashPoint crash_point = CrashPoint::kWalAppend;

  /// Counts a hit; true when this hit is the crashing one (the caller
  /// then applies the configured mutilation and goes dead).
  bool Hit(CrashPoint p) {
    if (crashed) return false;
    ++hits;
    if (crash_at > 0 && hits == crash_at) {
      crashed = true;
      crash_point = p;
      return true;
    }
    return false;
  }
};

/// The `%!` durability line riding in a case's facts text, invisible to
/// every parser (a `%` comment) and consumed by oracle pair #11:
///
///   %! crash=<N> torn=<K> flip=<B> sync=<S> snap=<M>
///
/// crash/torn/flip seed the DurabilityFaultSchedule above; sync is the
/// store's group-commit window (fsync every S commits, 0 = never) and
/// snap its compaction cadence (snapshot + WAL truncate every M commits,
/// 0 = never). Parsing is strict and total like session scripts: any
/// malformed `%!` line fails, and Format ∘ Parse is the identity on
/// canonical lines (the shrinker edits them blindly).
struct DurabilitySpec {
  int64_t crash_at = -1;
  int torn_keep = -1;
  int flip_bit = -1;
  int sync_every = 1;
  int snapshot_every = 0;

  DurabilityFaultSchedule Schedule() const {
    DurabilityFaultSchedule s;
    s.crash_at = crash_at;
    s.torn_keep = torn_keep;
    s.flip_bit = flip_bit;
    return s;
  }
};

/// Extracts the first `%!` line of `facts_text`. Returns false on a
/// malformed line; `*found` distinguishes "no line" from "parsed one".
bool ParseDurabilitySpec(const std::string& facts_text, DurabilitySpec* out,
                         bool* found);

/// Renders the canonical `%!` line (no trailing newline).
std::string FormatDurabilitySpec(const DurabilitySpec& spec);

}  // namespace store
}  // namespace datalog

#endif  // UNCHAINED_STORE_FAULT_H_
