#include "store/snapshotter.h"

#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <string.h>
#include <unistd.h>

#include "store/io.h"
#include "store/wal.h"

namespace datalog {
namespace store {

namespace {

constexpr uint32_t kMagic = 0x4E534455u;  // 'UDSN' little-endian
constexpr uint32_t kVersion = 1;
/// Bytes before the checksummed region: magic + version.
constexpr size_t kPreambleBytes = 8;
/// Checksummed header: epoch + wal_offset + base_len.
constexpr size_t kBodyHeaderBytes = 20;

}  // namespace

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }
std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.bin";
}
std::string SnapshotTmpPath(const std::string& dir) {
  return dir + "/snapshot.tmp";
}

Snapshotter::Snapshotter(std::string dir, const SnapshotterOptions& options)
    : dir_(std::move(dir)), options_(options) {}

Status Snapshotter::Write(const SnapshotData& snap) {
  if (crashed_) {
    return Status::Internal("store crashed (snapshot refused)");
  }
  std::string body;
  body.reserve(kBodyHeaderBytes + snap.base_bytes.size());
  PutI64(&body, snap.epoch);
  PutI64(&body, snap.wal_offset);
  PutU32(&body, static_cast<uint32_t>(snap.base_bytes.size()));
  body += snap.base_bytes;
  PutU32(&body, static_cast<uint32_t>(snap.symbols.size()));
  for (const std::string& spelling : snap.symbols) {
    PutU32(&body, static_cast<uint32_t>(spelling.size()));
    body += spelling;
  }

  std::string file;
  file.reserve(kPreambleBytes + body.size() + 4);
  PutU32(&file, kMagic);
  PutU32(&file, kVersion);
  file += body;
  PutU32(&file, Crc32(body.data(), body.size()));

  const std::string tmp = SnapshotTmpPath(dir_);
  const std::string final_path = SnapshotPath(dir_);
  // Any real I/O failure below latches crashed_: the protocol was
  // interrupted mid-flight, and like the WAL the only safe continuation
  // after a disk error is to refuse all further writes.
  const int fd =
      ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    crashed_ = true;
    return Status::Internal("snapshot open " + tmp + ": " +
                            ::strerror(errno));
  }
  const Status write_status = PWriteAll(fd, file.data(), file.size(), 0);
  if (!write_status.ok()) {
    ::close(fd);
    crashed_ = true;
    return write_status;
  }
  if (!options_.simulate_sync && ::fsync(fd) != 0) {
    const std::string err = ::strerror(errno);
    ::close(fd);
    crashed_ = true;
    return Status::Internal("snapshot fsync " + tmp + ": " + err);
  }
  ::close(fd);

  DurabilityFaultSchedule* faults = options_.faults;
  if (faults != nullptr && faults->Hit(CrashPoint::kSnapBeforeRename)) {
    // The finished tmp file is stranded; recovery ignores it and uses
    // the previous snapshot (or none) plus the intact WAL.
    crashed_ = true;
    return Status::Internal(std::string("store crashed at ") +
                            CrashPointName(CrashPoint::kSnapBeforeRename));
  }
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    crashed_ = true;
    return Status::Internal("snapshot rename: " +
                            std::string(::strerror(errno)));
  }
  if (!options_.simulate_sync) {
    const Status dir_sync = SyncDirOf(final_path);
    if (!dir_sync.ok()) {
      crashed_ = true;
      return dir_sync;
    }
  }
  ++writes_;
  if (faults != nullptr && faults->Hit(CrashPoint::kSnapAfterRename)) {
    // Snapshot published, WAL truncation lost — recovery must dedup the
    // still-present records against the snapshot epoch.
    crashed_ = true;
    return Status::Internal(std::string("store crashed at ") +
                            CrashPointName(CrashPoint::kSnapAfterRename));
  }
  return Status::OK();
}

Result<SnapshotData> LoadSnapshot(const std::string& dir, bool* found) {
  *found = false;
  SnapshotData snap;
  const std::string path = SnapshotPath(dir);
  if (::access(path.c_str(), F_OK) != 0) return snap;
  Result<std::string> file = ReadFileBytes(path);
  if (!file.ok()) return file.status();
  const std::string& data = *file;
  if (data.size() < kPreambleBytes + kBodyHeaderBytes + 4) {
    return Status::Internal("snapshot " + path + ": truncated header");
  }
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(data.data());
  if (GetU32(bytes) != kMagic) {
    return Status::Internal("snapshot " + path + ": bad magic");
  }
  if (GetU32(bytes + 4) != kVersion) {
    return Status::Internal("snapshot " + path + ": unsupported version " +
                            std::to_string(GetU32(bytes + 4)));
  }
  const unsigned char* body = bytes + kPreambleBytes;
  const size_t body_size = data.size() - kPreambleBytes - 4;
  const uint32_t stored_crc =
      GetU32(bytes + data.size() - 4);
  if (Crc32(body, body_size) != stored_crc) {
    return Status::Internal("snapshot " + path + ": crc mismatch");
  }
  snap.epoch = GetI64(body);
  snap.wal_offset = GetI64(body + 8);
  const uint32_t base_len = GetU32(body + 16);
  // Added-form bounds check: `base_len > body_size - kBodyHeaderBytes - 4`
  // underflows size_t for body_size in [20, 24) and would wave through a
  // base_len that reads past the buffer.
  if (static_cast<uint64_t>(base_len) + kBodyHeaderBytes + 4 >
      static_cast<uint64_t>(body_size)) {
    return Status::Internal("snapshot " + path + ": length mismatch");
  }
  snap.base_bytes.assign(
      reinterpret_cast<const char*>(body + kBodyHeaderBytes), base_len);
  size_t pos = kBodyHeaderBytes + base_len;
  const auto remaining = [&] { return body_size - pos; };
  if (remaining() < 4) {
    return Status::Internal("snapshot " + path + ": missing symbol table");
  }
  const uint32_t sym_count = GetU32(body + pos);
  pos += 4;
  // Each entry takes at least its 4-byte length prefix, so a count the
  // remaining bytes cannot hold is corrupt — reject before reserve()
  // turns it into a multi-GiB allocation.
  if (sym_count > remaining() / 4) {
    return Status::Internal("snapshot " + path + ": torn symbol table");
  }
  snap.symbols.reserve(sym_count);
  for (uint32_t i = 0; i < sym_count; ++i) {
    if (remaining() < 4) {
      return Status::Internal("snapshot " + path + ": torn symbol table");
    }
    const uint32_t len = GetU32(body + pos);
    pos += 4;
    if (remaining() < len) {
      return Status::Internal("snapshot " + path + ": torn symbol entry");
    }
    snap.symbols.emplace_back(reinterpret_cast<const char*>(body + pos),
                              len);
    pos += len;
  }
  if (pos != body_size) {
    return Status::Internal("snapshot " + path + ": trailing bytes");
  }
  *found = true;
  return snap;
}

}  // namespace store
}  // namespace datalog
