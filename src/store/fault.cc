#include "store/fault.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace datalog {
namespace store {

const char* CrashPointName(CrashPoint p) {
  switch (p) {
    case CrashPoint::kWalAppend:
      return "wal-append";
    case CrashPoint::kWalBeforeFsync:
      return "wal-before-fsync";
    case CrashPoint::kSnapBeforeRename:
      return "snap-before-rename";
    case CrashPoint::kSnapAfterRename:
      return "snap-after-rename";
  }
  return "unknown";
}

namespace {

// Parses "key=<int>" into *value; the accepted keys are fixed so a typo
// in a hand-edited case fails loudly instead of silently defaulting.
bool ParseField(const std::string& token, const char* key, int64_t* value,
                bool* matched) {
  const std::string prefix = std::string(key) + "=";
  if (token.compare(0, prefix.size(), prefix) != 0) {
    *matched = false;
    return true;
  }
  *matched = true;
  const std::string digits = token.substr(prefix.size());
  if (digits.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(digits.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *value = static_cast<int64_t>(v);
  return true;
}

}  // namespace

bool ParseDurabilitySpec(const std::string& facts_text, DurabilitySpec* out,
                         bool* found) {
  *found = false;
  std::istringstream lines(facts_text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.compare(0, 2, "%!") != 0) continue;
    DurabilitySpec spec;
    std::istringstream words(line.substr(2));
    std::string token;
    bool saw_crash = false, saw_torn = false, saw_flip = false;
    bool saw_sync = false, saw_snap = false;
    while (words >> token) {
      int64_t value = 0;
      bool matched = false;
      if (!ParseField(token, "crash", &value, &matched)) return false;
      if (matched) {
        if (saw_crash) return false;
        saw_crash = true;
        spec.crash_at = value;
        continue;
      }
      if (!ParseField(token, "torn", &value, &matched)) return false;
      if (matched) {
        if (saw_torn) return false;
        saw_torn = true;
        spec.torn_keep = static_cast<int>(value);
        continue;
      }
      if (!ParseField(token, "flip", &value, &matched)) return false;
      if (matched) {
        if (saw_flip) return false;
        saw_flip = true;
        spec.flip_bit = static_cast<int>(value);
        continue;
      }
      if (!ParseField(token, "sync", &value, &matched)) return false;
      if (matched) {
        if (saw_sync || value < 0) return false;
        saw_sync = true;
        spec.sync_every = static_cast<int>(value);
        continue;
      }
      if (!ParseField(token, "snap", &value, &matched)) return false;
      if (matched) {
        if (saw_snap || value < 0) return false;
        saw_snap = true;
        spec.snapshot_every = static_cast<int>(value);
        continue;
      }
      return false;  // Unknown field.
    }
    *found = true;
    *out = spec;
    return true;
  }
  return true;  // No %! line: fine, *found stays false.
}

std::string FormatDurabilitySpec(const DurabilitySpec& spec) {
  std::ostringstream out;
  out << "%! crash=" << spec.crash_at << " torn=" << spec.torn_keep
      << " flip=" << spec.flip_bit << " sync=" << spec.sync_every
      << " snap=" << spec.snapshot_every;
  return out.str();
}

}  // namespace store
}  // namespace datalog
