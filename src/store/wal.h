#ifndef UNCHAINED_STORE_WAL_H_
#define UNCHAINED_STORE_WAL_H_

// The write-ahead log (docs/durability.md#wal-format): an append-only
// file of length-prefixed, checksummed commit records,
//
//   u32 payload_len | u32 crc32(payload) | payload
//   payload = i64 epoch | canonical `%~` update tokens (UTF-8 bytes)
//
// all integers little-endian. One record per committed IncrementalView
// batch, appended *after* the batch applied cleanly and *before* the
// epoch is published — so every acknowledged commit is in the log, and
// the log never contains a rejected batch. fsync policy is a
// group-commit window: `sync_every = S` issues one fdatasync per S
// appends (1 = per commit, 0 = never); an unsynced tail is the bounded
// data loss a crash may eat.
//
// Every append passes through the crash points of an installed
// `DurabilityFaultSchedule` (fault.h). When the schedule fires, the WAL
// mutilates its own tail exactly as configured (torn final record,
// flipped bit — always within the *unsynced* region, mirroring what a
// real power cut can and cannot do to fsynced data) and goes dead:
// every later operation returns kInternal("store crashed ..."). A real
// I/O failure (pwrite/fdatasync/ftruncate returning an error, e.g.
// ENOSPC) latches the same dead state — the file no longer matches the
// in-memory offsets, so continuing would publish unlogged state.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "store/fault.h"

namespace datalog {
namespace store {

/// CRC-32 (IEEE 802.3, poly 0xEDB88320, the zlib `crc32`), table-based.
uint32_t Crc32(const void* data, size_t n);

struct WalOptions {
  /// fdatasync every N appends; 1 = per commit, 0 = never.
  int sync_every = 1;
  /// Fuzz mode: track synced offsets without issuing real fdatasync
  /// calls — the virtual crash is the schedule's, not the kernel's, so
  /// 1000-case sweeps don't serialize on the disk.
  bool simulate_sync = false;
  /// Optional crash schedule; not owned, may be null. Shared with the
  /// snapshotter so `crash_at` counts one global hit sequence.
  DurabilityFaultSchedule* faults = nullptr;
};

class Wal {
 public:
  /// Opens (creating if absent) the log at `path` for appending. The
  /// write offset starts at the current file size — Open never scans or
  /// repairs; that is recovery's job (recover.h).
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           const WalOptions& options);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;
  ~Wal();

  /// Appends the record for `epoch` and runs the group-commit window.
  /// On a schedule crash the configured tail damage is applied and
  /// kInternal is returned — the commit must NOT be acknowledged.
  Status Append(int64_t epoch, const std::string& update_tokens);

  /// Forces the group-commit window closed (fsync now).
  Status Sync();

  /// Truncates the log to `offset` bytes — compaction (after a snapshot
  /// rename) and recovery's torn-tail repair both land here.
  Status Truncate(int64_t offset);

  bool crashed() const { return crashed_; }
  int64_t size() const { return size_; }
  int64_t synced_size() const { return synced_size_; }
  /// Epoch of the last record fully appended / covered by an fsync
  /// (-1 when none). last_synced_epoch() is the durable lower bound a
  /// crash cannot take away.
  int64_t last_appended_epoch() const { return last_appended_epoch_; }
  int64_t last_synced_epoch() const { return last_synced_epoch_; }
  int64_t appends() const { return appends_; }
  int64_t syncs() const { return syncs_; }
  const std::string& path() const { return path_; }

 private:
  Wal(std::string path, int fd, int64_t size, const WalOptions& options);

  /// Marks the WAL dead and applies the schedule's bit flip to the
  /// unsynced tail [synced_size_, size_).
  Status Crash(CrashPoint point);
  /// Latches crashed_ when `st` is a real I/O failure, then returns it:
  /// after a failed pwrite/fdatasync/ftruncate the on-disk log no longer
  /// matches the in-memory offsets, so the log must refuse all further
  /// writes exactly like a scheduled crash.
  Status Poison(Status st);
  Status DoSync();

  std::string path_;
  int fd_ = -1;
  WalOptions options_;
  bool crashed_ = false;
  int64_t size_ = 0;
  int64_t synced_size_ = 0;
  int64_t last_appended_epoch_ = -1;
  int64_t last_synced_epoch_ = -1;
  int64_t appends_ = 0;
  int64_t syncs_ = 0;
  int since_sync_ = 0;
};

/// One decoded WAL record.
struct WalRecord {
  int64_t epoch = 0;
  std::string update_tokens;
  /// Byte offset one past this record — where a truncate would cut.
  int64_t end_offset = 0;
};

/// Result of scanning a log file front to back.
struct WalScan {
  std::vector<WalRecord> records;
  /// Offset of the first byte not covered by a valid record.
  int64_t valid_end = 0;
  int64_t file_size = 0;
  /// True when every byte of the file belongs to a valid record.
  bool clean = true;
  /// Why the scan stopped early ("torn record: ...", "crc mismatch ...").
  std::string detail;
};

/// Decodes records until the first torn / corrupt one (a missing file
/// scans as empty and clean — a fresh store). Never repairs; recovery
/// decides whether to truncate the invalid tail.
Result<WalScan> ScanWal(const std::string& path);

}  // namespace store
}  // namespace datalog

#endif  // UNCHAINED_STORE_WAL_H_
