#ifndef UNCHAINED_STORE_IO_H_
#define UNCHAINED_STORE_IO_H_

// Byte-level plumbing shared by the WAL and the snapshotter: fixed
// little-endian integer coding (the on-disk format is
// architecture-independent) and short-read/short-write/EINTR-safe POSIX
// wrappers. Nothing here knows about records or crash points.

#include <cstdint>
#include <string>

#include "base/result.h"
#include "base/status.h"

namespace datalog {
namespace store {

void PutU32(std::string* out, uint32_t v);
void PutI64(std::string* out, int64_t v);
uint32_t GetU32(const unsigned char* p);
int64_t GetI64(const unsigned char* p);

/// Writes all `n` bytes at `offset`, looping over short writes and EINTR.
Status PWriteAll(int fd, const char* data, size_t n, int64_t offset);

/// Reads the whole file into a string. ENOENT is an error here — callers
/// that tolerate a missing file check existence through their own scan.
Result<std::string> ReadFileBytes(const std::string& path);

/// fsyncs the directory containing `path`, so a rename inside it is
/// durable. No-op errors are surfaced; call only on real-durability
/// paths (simulate_sync skips it).
Status SyncDirOf(const std::string& path);

}  // namespace store
}  // namespace datalog

#endif  // UNCHAINED_STORE_IO_H_
