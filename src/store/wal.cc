#include "store/wal.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <array>
#include <cstring>

#include "store/io.h"

namespace datalog {
namespace store {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr size_t kHeaderBytes = 8;   // u32 len + u32 crc
constexpr size_t kEpochBytes = 8;    // i64 epoch inside the payload
/// Refuse absurd record lengths during scans so a corrupt length prefix
/// cannot drive a multi-GiB allocation. Far above any generated batch.
constexpr uint32_t kMaxRecordPayload = 64u << 20;

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       const WalOptions& options) {
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("wal open " + path + ": " + ::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = ::strerror(errno);
    ::close(fd);
    return Status::Internal("wal fstat " + path + ": " + err);
  }
  return std::unique_ptr<Wal>(
      new Wal(path, fd, static_cast<int64_t>(st.st_size), options));
}

Wal::Wal(std::string path, int fd, int64_t size, const WalOptions& options)
    : path_(std::move(path)),
      fd_(fd),
      options_(options),
      size_(size),
      synced_size_(size) {}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Status Wal::Crash(CrashPoint point) {
  crashed_ = true;
  const DurabilityFaultSchedule* faults = options_.faults;
  // Bit flips only ever land in the unsynced tail: fsynced bytes are
  // the durability contract, and a schedule that could corrupt them
  // would make the bounded-loss oracle vacuous.
  if (faults != nullptr && faults->flip_bit >= 0 && synced_size_ < size_) {
    const int64_t tail = size_ - synced_size_;
    const int64_t byte_index =
        synced_size_ + (static_cast<int64_t>(faults->flip_bit) / 8) % tail;
    unsigned char b = 0;
    if (::pread(fd_, &b, 1, static_cast<off_t>(byte_index)) == 1) {
      b = static_cast<unsigned char>(
          b ^ static_cast<unsigned char>(1u << (faults->flip_bit % 8)));
      const char c = static_cast<char>(b);
      (void)PWriteAll(fd_, &c, 1, byte_index);
    }
  }
  return Status::Internal(std::string("store crashed at ") +
                          CrashPointName(point));
}

Status Wal::Poison(Status st) {
  if (!st.ok()) crashed_ = true;
  return st;
}

Status Wal::Append(int64_t epoch, const std::string& update_tokens) {
  if (crashed_) {
    return Status::Internal("store crashed (wal append refused)");
  }
  std::string payload;
  payload.reserve(kEpochBytes + update_tokens.size());
  PutI64(&payload, epoch);
  payload += update_tokens;
  if (payload.size() > kMaxRecordPayload) {
    return Status::Internal("wal record over size cap");
  }
  std::string record;
  record.reserve(kHeaderBytes + payload.size());
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU32(&record, Crc32(payload.data(), payload.size()));
  record += payload;

  DurabilityFaultSchedule* faults = options_.faults;
  if (faults != nullptr && faults->Hit(CrashPoint::kWalAppend)) {
    // Torn write: a prefix of the record reaches the disk, the rest
    // evaporates with the process.
    size_t keep = record.size();
    if (faults->torn_keep >= 0 &&
        static_cast<size_t>(faults->torn_keep) < keep) {
      keep = static_cast<size_t>(faults->torn_keep);
    }
    if (keep > 0) {
      DATALOG_RETURN_IF_ERROR(
          Poison(PWriteAll(fd_, record.data(), keep, size_)));
      size_ += static_cast<int64_t>(keep);
    }
    return Crash(CrashPoint::kWalAppend);
  }

  DATALOG_RETURN_IF_ERROR(
      Poison(PWriteAll(fd_, record.data(), record.size(), size_)));
  size_ += static_cast<int64_t>(record.size());
  last_appended_epoch_ = epoch;
  ++appends_;
  ++since_sync_;

  if (options_.sync_every > 0 && since_sync_ >= options_.sync_every) {
    if (faults != nullptr && faults->Hit(CrashPoint::kWalBeforeFsync)) {
      return Crash(CrashPoint::kWalBeforeFsync);
    }
    DATALOG_RETURN_IF_ERROR(DoSync());
  }
  return Status::OK();
}

Status Wal::Sync() {
  if (crashed_) return Status::Internal("store crashed (wal sync refused)");
  if (since_sync_ == 0 && synced_size_ == size_) return Status::OK();
  DurabilityFaultSchedule* faults = options_.faults;
  if (faults != nullptr && faults->Hit(CrashPoint::kWalBeforeFsync)) {
    return Crash(CrashPoint::kWalBeforeFsync);
  }
  return DoSync();
}

Status Wal::DoSync() {
  if (!options_.simulate_sync) {
    if (::fdatasync(fd_) != 0) {
      return Poison(Status::Internal(std::string("wal fdatasync: ") +
                                     ::strerror(errno)));
    }
  }
  synced_size_ = size_;
  last_synced_epoch_ = last_appended_epoch_;
  since_sync_ = 0;
  ++syncs_;
  return Status::OK();
}

Status Wal::Truncate(int64_t offset) {
  if (crashed_) {
    return Status::Internal("store crashed (wal truncate refused)");
  }
  if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
    return Poison(Status::Internal(std::string("wal ftruncate: ") +
                                   ::strerror(errno)));
  }
  size_ = offset;
  if (synced_size_ > size_) synced_size_ = size_;
  return Status::OK();
}

Result<WalScan> ScanWal(const std::string& path) {
  WalScan scan;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return scan;  // No log yet: empty and clean.
    return Status::Internal("wal open " + path + ": " + ::strerror(errno));
  }
  std::string data;
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      const std::string err = ::strerror(errno);
      ::close(fd);
      return Status::Internal("wal read " + path + ": " + err);
    }
    if (r == 0) break;
    data.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);

  scan.file_size = static_cast<int64_t>(data.size());
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(data.data());
  size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < kHeaderBytes) {
      scan.clean = false;
      scan.detail = "torn record: short header at offset " +
                    std::to_string(pos);
      break;
    }
    const uint32_t len = GetU32(bytes + pos);
    const uint32_t crc = GetU32(bytes + pos + 4);
    if (len < kEpochBytes || len > kMaxRecordPayload) {
      scan.clean = false;
      scan.detail = "corrupt length " + std::to_string(len) + " at offset " +
                    std::to_string(pos);
      break;
    }
    if (data.size() - pos - kHeaderBytes < len) {
      scan.clean = false;
      scan.detail = "torn record: short payload at offset " +
                    std::to_string(pos);
      break;
    }
    const unsigned char* payload = bytes + pos + kHeaderBytes;
    if (Crc32(payload, len) != crc) {
      scan.clean = false;
      scan.detail = "crc mismatch at offset " + std::to_string(pos);
      break;
    }
    WalRecord record;
    record.epoch = GetI64(payload);
    record.update_tokens.assign(
        reinterpret_cast<const char*>(payload + kEpochBytes),
        len - kEpochBytes);
    pos += kHeaderBytes + len;
    record.end_offset = static_cast<int64_t>(pos);
    scan.records.push_back(std::move(record));
  }
  scan.valid_end = static_cast<int64_t>(
      scan.records.empty() ? 0 : scan.records.back().end_offset);
  return scan;
}

}  // namespace store
}  // namespace datalog
