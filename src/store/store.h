#ifndef UNCHAINED_STORE_STORE_H_
#define UNCHAINED_STORE_STORE_H_

// DurableStore: the facade the server's commit path talks to
// (docs/durability.md). One store owns one directory holding
//
//   wal.log       — the write-ahead log (wal.h)
//   snapshot.bin  — the newest compacted snapshot (snapshotter.h)
//   snapshot.tmp  — transient; garbage unless mid-rename
//
// and sequences the durability protocol: `AppendCommit` logs a committed
// batch (group-commit fsync per WalOptions), `MaybeCompact` cuts a
// snapshot every `snapshot_every` commits and truncates the log behind
// it, `Flush` closes the fsync window at shutdown. A crash — real or
// scheduled — makes the store permanently dead: every call returns
// kInternal and the server refuses writes, exactly like a process whose
// disk went away. Recovery from the directory is recover.h's job, on a
// fresh store.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "store/fault.h"
#include "store/snapshotter.h"
#include "store/wal.h"

namespace datalog {
namespace store {

struct StoreOptions {
  /// Store directory; created (one level) if absent.
  std::string dir;
  /// Group-commit window: fsync every N commits (1 = per commit,
  /// 0 = never).
  int sync_every = 1;
  /// Cut a snapshot + truncate the WAL every N commits (0 = never).
  int snapshot_every = 0;
  /// Fuzz mode: track fsync bookkeeping without real fsync calls.
  bool simulate_sync = false;
  /// Crash schedule, copied in; crash_at <= 0 never fires.
  DurabilityFaultSchedule faults;
};

/// One attempted commit append, recorded before the WAL gets a chance to
/// crash — the oracle replays this list to reconstruct what the store
/// *tried* to make durable.
struct CommitAttempt {
  int64_t epoch = 0;
  std::string update_tokens;
};

class DurableStore {
 public:
  static Result<std::unique_ptr<DurableStore>> Open(
      const StoreOptions& options);

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Logs the committed batch for `epoch`. Must be called after the view
  /// applied the batch and *before* the epoch is published or the client
  /// acked — an error (crash) means the commit must be refused.
  Status AppendCommit(int64_t epoch, const std::string& update_tokens);

  /// Cuts a snapshot of `base_bytes` (current through `epoch`) when the
  /// compaction cadence is due, then truncates the WAL behind it. No-op
  /// (OK) when not due. `symbols` is the writer's SymbolTable in value
  /// order — the decoder key for base_bytes (snapshotter.h). `force`
  /// ignores the cadence.
  Status MaybeCompact(int64_t epoch, const std::string& base_bytes,
                      std::vector<std::string> symbols, bool force = false);

  /// Closes the group-commit window (fsync now).
  Status Flush();

  /// True when the compaction cadence says the next MaybeCompact will
  /// cut a snapshot — lets the caller skip serializing the base
  /// otherwise.
  bool CompactionDue() const {
    return options_.snapshot_every > 0 &&
           commits_since_snapshot_ >= options_.snapshot_every;
  }

  bool crashed() const {
    return wal_->crashed() || snapshotter_->crashed() ||
           options_.faults.crashed;
  }
  /// Highest epoch guaranteed to survive any crash from here on: covered
  /// by an fsynced WAL record or a renamed snapshot.
  int64_t durable_epoch() const {
    return std::max(wal_->last_synced_epoch(), last_snapshot_epoch_);
  }
  const std::vector<CommitAttempt>& attempts() const { return attempts_; }
  const DurabilityFaultSchedule& faults() const { return options_.faults; }
  const Wal& wal() const { return *wal_; }
  int64_t snapshots() const { return snapshotter_->writes(); }
  const std::string& dir() const { return options_.dir; }

 private:
  /// Two-phase: Open wires wal_/snapshotter_ after construction so both
  /// point at the schedule copy living in options_.faults.
  explicit DurableStore(StoreOptions options);

  StoreOptions options_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<Snapshotter> snapshotter_;
  std::vector<CommitAttempt> attempts_;
  int64_t last_snapshot_epoch_ = -1;
  int commits_since_snapshot_ = 0;
};

}  // namespace store
}  // namespace datalog

#endif  // UNCHAINED_STORE_STORE_H_
