#include "store/io.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include "eval/test_hooks.h"

namespace datalog {

namespace internal {
int g_store_fail_pwrites = 0;
}  // namespace internal

namespace store {

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFFu));
  out->push_back(static_cast<char>((v >> 8) & 0xFFu));
  out->push_back(static_cast<char>((v >> 16) & 0xFFu));
  out->push_back(static_cast<char>((v >> 24) & 0xFFu));
}

void PutI64(std::string* out, int64_t v) {
  const uint64_t u = static_cast<uint64_t>(v);
  PutU32(out, static_cast<uint32_t>(u & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(u >> 32));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

int64_t GetI64(const unsigned char* p) {
  const uint64_t lo = GetU32(p);
  const uint64_t hi = GetU32(p + 4);
  return static_cast<int64_t>(lo | (hi << 32));
}

Status PWriteAll(int fd, const char* data, size_t n, int64_t offset) {
  if (internal::g_store_fail_pwrites > 0) {
    --internal::g_store_fail_pwrites;
    return Status::Internal(std::string("pwrite: ") + ::strerror(EIO) +
                            " (injected)");
  }
  size_t off = 0;
  while (off < n) {
    const ssize_t w =
        ::pwrite(fd, data + off, n - off,
                 static_cast<off_t>(offset) + static_cast<off_t>(off));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("pwrite: ") + ::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("open " + path + ": " + ::strerror(errno));
  }
  std::string data;
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      const std::string err = ::strerror(errno);
      ::close(fd);
      return Status::Internal("read " + path + ": " + err);
    }
    if (r == 0) break;
    data.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return data;
}

Status SyncDirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("open dir " + dir + ": " + ::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    const std::string err = ::strerror(errno);
    ::close(fd);
    return Status::Internal("fsync dir " + dir + ": " + err);
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace store
}  // namespace datalog
