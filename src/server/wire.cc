#include "server/wire.h"

#include "dist/transport.h"

namespace datalog {
namespace server {

namespace {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(std::string* out, int64_t v) {
  const uint64_t u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((u >> (8 * i)) & 0xff));
  }
}

/// Bounded little-endian reader over a payload string.
struct Reader {
  const std::string& data;
  size_t pos = 0;

  bool U8(uint8_t* v) {
    if (pos + 1 > data.size()) return false;
    *v = static_cast<uint8_t>(data[pos++]);
    return true;
  }
  bool U32(uint32_t* v) {
    if (pos + 4 > data.size()) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(static_cast<uint8_t>(data[pos + static_cast<size_t>(i)]))
           << (8 * i);
    }
    pos += 4;
    *v = r;
    return true;
  }
  bool I64(int64_t* v) {
    if (pos + 8 > data.size()) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(static_cast<uint8_t>(data[pos + static_cast<size_t>(i)]))
           << (8 * i);
    }
    pos += 8;
    *v = static_cast<int64_t>(r);
    return true;
  }
  bool Bytes(uint32_t n, std::string* v) {
    if (pos + n > data.size()) return false;
    v->assign(data, pos, n);
    pos += n;
    return true;
  }
  bool Done() const { return pos == data.size(); }
};

}  // namespace

std::string EncodeRequest(const Request& request) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(request.kind));
  PutI64(&out, request.deadline_ms);
  PutU32(&out, static_cast<uint32_t>(request.text.size()));
  out += request.text;
  return out;
}

bool DecodeRequest(const std::string& payload, Request* request) {
  Reader r{payload};
  uint8_t kind = 0;
  uint32_t text_len = 0;
  Request out;
  if (!r.U8(&kind) || kind > static_cast<uint8_t>(Request::Kind::kClose)) {
    return false;
  }
  out.kind = static_cast<Request::Kind>(kind);
  if (!r.I64(&out.deadline_ms)) return false;
  if (!r.U32(&text_len) || !r.Bytes(text_len, &out.text)) return false;
  if (!r.Done()) return false;
  *request = std::move(out);
  return true;
}

std::string EncodeResponse(const Response& response) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(response.status));
  PutI64(&out, response.epoch);
  PutU32(&out, static_cast<uint32_t>(response.body.size()));
  out += response.body;
  return out;
}

bool DecodeResponse(const std::string& payload, Response* response) {
  Reader r{payload};
  uint8_t status = 0;
  uint32_t body_len = 0;
  Response out;
  if (!r.U8(&status)) return false;
  out.status = static_cast<StatusCode>(status);
  if (!r.I64(&out.epoch)) return false;
  if (!r.U32(&body_len) || !r.Bytes(body_len, &out.body)) return false;
  if (!r.Done()) return false;
  *response = std::move(out);
  return true;
}

bool WriteFrame(ByteChannel* channel, const std::string& payload) {
  std::string header;
  PutU32(&header, static_cast<uint32_t>(payload.size()));
  if (!channel->Write(header.data(), header.size())) return false;
  return payload.empty() ||
         channel->Write(payload.data(), payload.size());
}

bool ReadFrame(ByteChannel* channel, std::string* payload) {
  char header[4];
  if (!channel->Read(header, sizeof(header))) return false;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(header[i]))
           << (8 * i);
  }
  if (len > kMaxFrameBytes) return false;
  payload->resize(len);
  return len == 0 || channel->Read(&(*payload)[0], len);
}

}  // namespace server
}  // namespace datalog
