#include "server/snapshot.h"

#include <cassert>

#include "obs/metrics.h"

namespace datalog {
namespace server {

namespace {

obs::GaugeHandle& LiveGauge() {
  static obs::GaugeHandle g("server.snapshot.live");
  return g;
}

obs::GaugeHandle& PinnedGauge() {
  static obs::GaugeHandle g("server.snapshot.pinned");
  return g;
}

obs::CounterHandle& PublishedCounter() {
  static obs::CounterHandle c("server.snapshot.published");
  return c;
}

obs::CounterHandle& ReclaimedCounter() {
  static obs::CounterHandle c("server.snapshot.reclaimed");
  return c;
}

}  // namespace

const std::string& Snapshot::PredBytes(PredId pred) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pred_bytes_.find(pred);
  if (it != pred_bytes_.end()) return it->second;
  std::string bytes = model_.Restrict({pred}).SerializeSnapshot();
  return pred_bytes_.emplace(pred, std::move(bytes)).first->second;
}

SnapshotPin& SnapshotPin::operator=(SnapshotPin&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = other.registry_;
    snapshot_ = other.snapshot_;
    other.registry_ = nullptr;
    other.snapshot_ = nullptr;
  }
  return *this;
}

void SnapshotPin::Release() {
  if (registry_ != nullptr && snapshot_ != nullptr) {
    registry_->Unpin(snapshot_);
  }
  registry_ = nullptr;
  snapshot_ = nullptr;
}

SnapshotRegistry::~SnapshotRegistry() {
  // Pins must not outlive the registry; by then every retired snapshot
  // has been reclaimed and only the current entry remains.
  std::lock_guard<std::mutex> lock(mu_);
  assert(counters_.pins == counters_.unpins);
}

void SnapshotRegistry::Publish(std::unique_ptr<Snapshot> snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!entries_.empty()) {
    Entry* prev = entries_.back().get();
    assert(snapshot->epoch() > prev->snapshot->epoch());
    prev->retired = true;
    ++counters_.retired;
    if (prev->pins == 0) ReclaimLocked(entries_.size() - 1);
  }
  auto entry = std::make_unique<Entry>();
  entry->snapshot = std::move(snapshot);
  entries_.push_back(std::move(entry));
  ++counters_.published;
  PublishedCounter().Add(1);
  LiveGauge().Set(static_cast<int64_t>(entries_.size()));
}

SnapshotPin SnapshotRegistry::Pin() {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty()) return SnapshotPin();
  Entry* current = entries_.back().get();
  ++current->pins;
  ++counters_.pins;
  PinnedGauge().Set(counters_.pins - counters_.unpins);
  return SnapshotPin(this, current->snapshot.get());
}

void SnapshotRegistry::Unpin(const Snapshot* snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < entries_.size(); ++i) {
    Entry* e = entries_[i].get();
    if (e->snapshot.get() != snapshot) continue;
    assert(e->pins > 0);
    --e->pins;
    ++counters_.unpins;
    PinnedGauge().Set(counters_.pins - counters_.unpins);
    if (e->retired && e->pins == 0) ReclaimLocked(i);
    return;
  }
  assert(false && "unpin of unknown snapshot");
}

void SnapshotRegistry::ReclaimLocked(size_t i) {
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
  ++counters_.reclaimed;
  ReclaimedCounter().Add(1);
  LiveGauge().Set(static_cast<int64_t>(entries_.size()));
}

int64_t SnapshotRegistry::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.empty() ? -1 : entries_.back()->snapshot->epoch();
}

int64_t SnapshotRegistry::live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

int64_t SnapshotRegistry::pinned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.pins - counters_.unpins;
}

SnapshotRegistry::Counters SnapshotRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace server
}  // namespace datalog
