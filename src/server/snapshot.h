#ifndef UNCHAINED_SERVER_SNAPSHOT_H_
#define UNCHAINED_SERVER_SNAPSHOT_H_

// Epoch-versioned immutable snapshots with epoch-based reclamation — the
// MVCC read side of the concurrent Datalog server (docs/server.md).
//
// The single writer publishes a fresh `Snapshot` after every applied
// mutation batch; readers pin the current snapshot, serve their query
// from its frozen bytes, and unpin. Publishing retires the predecessor;
// a retired snapshot is reclaimed (freed) the moment its last pin drops,
// so a reader pinned across any number of writer batches keeps observing
// the exact bytes of the epoch it pinned — never a torn intermediate
// state — while memory stays bounded by (live pins + 1) snapshots.
//
// All registry bookkeeping is guarded by one mutex; payload reads after a
// successful Pin touch only immutable data and take no lock. The
// deterministic counters feed both the `server.snapshot.*` metrics and
// the reclamation assertions of oracle pair #10 and tests/server_test.cc.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ra/catalog.h"
#include "ra/instance.h"

namespace datalog {
namespace server {

/// One published version of the served model. Immutable after Publish
/// apart from the lazily filled per-predicate byte cache (guarded by a
/// snapshot-local mutex; the underlying Instance is never mutated).
class Snapshot {
 public:
  Snapshot(int64_t epoch, Instance model, std::string model_bytes)
      : epoch_(epoch),
        model_(std::move(model)),
        model_bytes_(std::move(model_bytes)) {}

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  int64_t epoch() const { return epoch_; }
  /// Canonical Instance::SerializeSnapshot bytes of the whole model at
  /// this epoch — the payload of a full-snapshot query and the unit the
  /// server-vs-library oracle diffs per epoch.
  const std::string& model_bytes() const { return model_bytes_; }
  const Instance& model() const { return model_; }

  /// Bytes of the model restricted to `pred` (same canonical format),
  /// computed on first request and cached for the snapshot's lifetime.
  const std::string& PredBytes(PredId pred) const;

 private:
  const int64_t epoch_;
  const Instance model_;
  const std::string model_bytes_;
  mutable std::mutex mu_;
  mutable std::unordered_map<PredId, std::string> pred_bytes_;
};

class SnapshotRegistry;

/// RAII pin over one published snapshot. While the pin is alive the
/// snapshot cannot be reclaimed; destruction (or Release) unpins and, if
/// the snapshot was retired in the meantime and this was the last pin,
/// frees it. Movable, not copyable — one pin, one unpin, so the
/// reclamation counters balance even on cancelled/abandoned requests.
class SnapshotPin {
 public:
  SnapshotPin() = default;
  SnapshotPin(SnapshotPin&& other) noexcept { *this = std::move(other); }
  SnapshotPin& operator=(SnapshotPin&& other) noexcept;
  SnapshotPin(const SnapshotPin&) = delete;
  SnapshotPin& operator=(const SnapshotPin&) = delete;
  ~SnapshotPin() { Release(); }

  bool valid() const { return snapshot_ != nullptr; }
  const Snapshot* get() const { return snapshot_; }
  const Snapshot* operator->() const { return snapshot_; }
  const Snapshot& operator*() const { return *snapshot_; }

  /// Unpins early (idempotent).
  void Release();

 private:
  friend class SnapshotRegistry;
  SnapshotPin(SnapshotRegistry* registry, const Snapshot* snapshot)
      : registry_(registry), snapshot_(snapshot) {}

  SnapshotRegistry* registry_ = nullptr;
  const Snapshot* snapshot_ = nullptr;
};

/// Publication point and reclamation bookkeeping. One writer calls
/// Publish; any number of reader threads call Pin concurrently.
class SnapshotRegistry {
 public:
  /// Deterministic lifecycle counters (monotone). At quiescence
  /// `pins == unpins`, `retired == published - 1` and
  /// `reclaimed == retired`: every superseded snapshot was freed.
  struct Counters {
    int64_t published = 0;
    int64_t retired = 0;
    int64_t reclaimed = 0;
    int64_t pins = 0;
    int64_t unpins = 0;
  };

  SnapshotRegistry() = default;
  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;
  ~SnapshotRegistry();

  /// Makes `snapshot` the current epoch and retires the predecessor
  /// (reclaiming it immediately when unpinned). Epochs must be published
  /// in increasing order by a single writer.
  void Publish(std::unique_ptr<Snapshot> snapshot);

  /// Pins the current snapshot. Invalid (and a no-op to release) only
  /// before the first Publish.
  SnapshotPin Pin();

  /// Epoch of the current snapshot, -1 before the first Publish.
  int64_t current_epoch() const;
  /// Snapshots not yet reclaimed (current + retired-but-pinned).
  int64_t live() const;
  /// Pins currently held.
  int64_t pinned() const;
  Counters counters() const;

 private:
  friend class SnapshotPin;
  struct Entry {
    std::unique_ptr<Snapshot> snapshot;
    int64_t pins = 0;
    bool retired = false;
  };

  void Unpin(const Snapshot* snapshot);
  /// Erases `entries_[i]` and counts the reclamation. Caller holds `mu_`.
  void ReclaimLocked(size_t i);

  mutable std::mutex mu_;
  /// Live snapshots, publication order; the last entry is current.
  std::vector<std::unique_ptr<Entry>> entries_;
  Counters counters_;
};

}  // namespace server
}  // namespace datalog

#endif  // UNCHAINED_SERVER_SNAPSHOT_H_
