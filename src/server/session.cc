#include "server/session.h"

#include <cctype>
#include <cstdint>
#include <limits>

namespace datalog {
namespace server {

bool ParseUpdateTokens(std::string_view tokens, const Catalog& catalog,
                       SymbolTable* symbols, std::vector<FactUpdate>* out) {
  size_t i = 0;
  while (i < tokens.size()) {
    if (tokens[i] == ' ' || tokens[i] == '\t') {
      ++i;
      continue;
    }
    FactUpdate u;
    if (tokens[i] == '+') {
      u.insert = true;
    } else if (tokens[i] == '-') {
      u.insert = false;
    } else {
      return false;
    }
    ++i;
    const size_t name_start = i;
    while (i < tokens.size() &&
           (std::isalnum(static_cast<unsigned char>(tokens[i])) != 0 ||
            tokens[i] == '_')) {
      ++i;
    }
    if (i == name_start || i >= tokens.size() || tokens[i] != '(') {
      return false;
    }
    u.pred = catalog.Find(tokens.substr(name_start, i - name_start));
    if (u.pred < 0) return false;
    ++i;  // '('
    while (i < tokens.size() && tokens[i] != ')') {
      int64_t v = 0;
      const size_t digit_start = i;
      while (i < tokens.size() &&
             std::isdigit(static_cast<unsigned char>(tokens[i])) != 0) {
        const int64_t digit = tokens[i] - '0';
        // Reject the token on int64 overflow: tokens arrive from the
        // wire and from WAL replay, and a wrapped value would break the
        // Format∘Parse identity recovery depends on (overflow of signed
        // arithmetic is UB besides).
        if (v > (std::numeric_limits<int64_t>::max() - digit) / 10) {
          return false;
        }
        v = v * 10 + digit;
        ++i;
      }
      if (i == digit_start) return false;
      u.tuple.push_back(symbols->InternInt(v));
      if (i < tokens.size() && tokens[i] == ',') ++i;
    }
    if (i >= tokens.size()) return false;
    ++i;  // ')'
    if (static_cast<int>(u.tuple.size()) != catalog.ArityOf(u.pred)) {
      return false;
    }
    out->push_back(std::move(u));
  }
  return true;
}

std::string FormatUpdateTokens(const std::vector<FactUpdate>& updates,
                               const Catalog& catalog,
                               const SymbolTable& symbols) {
  std::string out;
  for (const FactUpdate& u : updates) {
    if (!out.empty()) out += ' ';
    out += u.insert ? '+' : '-';
    out += catalog.NameOf(u.pred);
    out += '(';
    for (size_t i = 0; i < u.tuple.size(); ++i) {
      if (i > 0) out += ',';
      out += symbols.NameOf(u.tuple[i]);
    }
    out += ')';
  }
  return out;
}

namespace {

/// Identifier charset of predicate names (matches the program grammar).
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ParseSessionLine(std::string_view line, SessionOp* op) {
  size_t i = 0;
  auto skip_blanks = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  skip_blanks();
  // Session id.
  const size_t id_start = i;
  int sid = 0;
  while (i < line.size() &&
         std::isdigit(static_cast<unsigned char>(line[i])) != 0) {
    const int digit = line[i] - '0';
    // Same overflow discipline as ParseUpdateTokens: reject rather than
    // wrap on untrusted digit runs.
    if (sid > (std::numeric_limits<int>::max() - digit) / 10) return false;
    sid = sid * 10 + digit;
    ++i;
  }
  if (i == id_start) return false;
  op->session = sid;
  skip_blanks();
  if (i >= line.size()) return false;
  const char kind = line[i++];
  switch (kind) {
    case 'q': {
      skip_blanks();
      const size_t name_start = i;
      while (i < line.size() && IsNameChar(line[i])) ++i;
      if (i == name_start) return false;
      op->kind = SessionOp::Kind::kQuery;
      op->pred = std::string(line.substr(name_start, i - name_start));
      skip_blanks();
      return i == line.size();
    }
    case 's': {
      op->kind = SessionOp::Kind::kSnapshot;
      skip_blanks();
      return i == line.size();
    }
    case 'u': {
      if (i < line.size() && line[i] != ' ' && line[i] != '\t') return false;
      skip_blanks();
      if (i == line.size()) return false;  // an update needs tokens
      op->kind = SessionOp::Kind::kUpdate;
      std::string_view rest = line.substr(i);
      while (!rest.empty() &&
             (rest.back() == ' ' || rest.back() == '\t')) {
        rest.remove_suffix(1);
      }
      op->update_tokens = std::string(rest);
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

bool ParseSessionScript(const std::string& facts_text,
                        std::vector<SessionOp>* out) {
  size_t pos = 0;
  while (pos < facts_text.size()) {
    size_t eol = facts_text.find('\n', pos);
    if (eol == std::string::npos) eol = facts_text.size();
    std::string_view line(facts_text.data() + pos, eol - pos);
    pos = eol + 1;
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    if (line.substr(0, 2) != "%@") continue;
    SessionOp op;
    if (!ParseSessionLine(line.substr(2), &op)) return false;
    out->push_back(std::move(op));
  }
  return true;
}

std::string FormatSessionOp(const SessionOp& op) {
  std::string line = "%@ " + std::to_string(op.session) + " ";
  switch (op.kind) {
    case SessionOp::Kind::kQuery:
      line += "q " + op.pred;
      break;
    case SessionOp::Kind::kSnapshot:
      line += "s";
      break;
    case SessionOp::Kind::kUpdate:
      line += "u " + op.update_tokens;
      break;
  }
  return line;
}

}  // namespace server
}  // namespace datalog
