#ifndef UNCHAINED_SERVER_SERVER_H_
#define UNCHAINED_SERVER_SERVER_H_

// A long-lived concurrent Datalog service (docs/server.md): one writer
// drains a mutation op-queue through IncrementalView::ApplyBatch and
// publishes an immutable epoch-versioned snapshot after every batch; N
// readers answer queries by pinning the current snapshot and serving its
// frozen bytes — MVCC snapshot reads with epoch-based reclamation
// (snapshot.h). Per-request budgets reuse EvalOptions::deadline_ms /
// CancelToken semantics; `server.*` metrics and spans plug into the
// observability layer (docs/observability.md).
//
// The class has two driving modes sharing one engine room:
//
//   * Scheduler-driven (single-threaded): SubmitUpdate / ApplyOneQueued /
//     ServeQuery expose each writer and reader step as an explicit call,
//     which is what the deterministic virtual-clock scheduler
//     (scheduler.h) and oracle pair #10 interleave and replay.
//   * Threaded: Start() spawns the writer thread and a reader pool;
//     Call() is the thread-safe blocking client surface, and
//     Serve/ServeListener pump wire frames (wire.h) from in-process or
//     socket channels (dist/transport.h) into Call.
//
// Consistency contract (what pair #10 checks): the bytes published for
// epoch e are byte-identical to a sequential IncrementalView replay of
// the first e committed batches; epochs observed by any one session are
// monotone; a reader pinned at epoch e sees the same bytes no matter how
// many batches commit meanwhile; and at quiescence no pins are held and
// every retired snapshot has been reclaimed.

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>
#include <condition_variable>

#include "ast/ast.h"
#include "base/result.h"
#include "eval/incremental.h"
#include "server/snapshot.h"
#include "server/wire.h"
#include "store/store.h"

namespace datalog {

class ByteChannel;
class SocketListener;

namespace server {

struct ServerOptions {
  /// Reader threads in threaded mode (>= 1). The scheduler-driven mode
  /// has no threads at all.
  int num_readers = 2;
  /// Evaluation options of the underlying IncrementalView (storage
  /// backend, thread pool for the initial evaluation, ...). The
  /// per-request deadline/cancel fields are ignored here — budgets ride
  /// the requests.
  EvalOptions eval;
  /// Durability (docs/durability.md). When `durability.dir` is non-empty
  /// Create recovers from that directory (snapshot + WAL replay) before
  /// publishing, and the writer logs every committed batch through a
  /// DurableStore — WAL append between apply and publish, so an acked
  /// commit is in the log, plus periodic snapshot compaction. An empty
  /// dir keeps the PR-9 in-memory behavior. The embedded fault schedule
  /// drives the crash fuzzing (store/fault.h).
  store::StoreOptions durability;
};

/// One applied mutation batch: `epoch` is the snapshot it produced.
/// Commit order is publication order; replaying the log against a fresh
/// IncrementalView reproduces every epoch's bytes.
struct CommitRecord {
  int64_t epoch = 0;
  std::vector<FactUpdate> batch;
};

class Server {
 public:
  /// Evaluates the initial model (epoch 0 is published before Create
  /// returns) and wires the writer machinery. `catalog` and `symbols`
  /// must outlive the server; `program` and `base` are copied as needed
  /// by the underlying view. Fails like IncrementalView::Create
  /// (kUnsupported / kNotStratifiable on out-of-fragment programs).
  static Result<std::unique_ptr<Server>> Create(const Program& program,
                                                const Catalog* catalog,
                                                SymbolTable* symbols,
                                                const Instance& base,
                                                const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // -- Scheduler-driven surface (no internal threads) -------------------

  /// Parses the signed update tokens and enqueues the batch; returns the
  /// ticket to poll with UpdateOutcome. kSchemaError on malformed tokens
  /// or unknown/wrong-arity predicates (nothing is enqueued).
  Result<int64_t> SubmitUpdate(const std::string& tokens);

  /// One writer step: applies the oldest queued batch through the view,
  /// publishes the next epoch, appends the commit record and settles the
  /// ticket. False if the queue was empty.
  bool ApplyOneQueued();

  /// True once `ticket`'s batch was applied (or rejected); fills the
  /// update's response (epoch created, or the rejection status).
  bool UpdateOutcome(int64_t ticket, Response* response) const;

  int64_t pending_updates() const;

  /// One reader step: serves a read request against the currently
  /// published snapshot. Budget/cancellation are checked before pinning
  /// and again between pin and payload serialization; a refused request
  /// holds no pin on return. `admit` is the budget's start point —
  /// threaded mode passes the moment the request entered the server.
  Response ServeQuery(const Request& request);
  Response ServeQuery(const Request& request,
                      std::chrono::steady_clock::time_point admit);

  // -- Threaded mode ----------------------------------------------------

  /// Spawns the writer thread and `num_readers` reader threads. Idempotent.
  void Start();
  /// Drains nothing: pending updates stay queued, in-flight Calls are
  /// completed, then threads exit. Idempotent; called by the destructor.
  void Stop();

  /// Thread-safe blocking request: updates wait for their commit (their
  /// response carries the created epoch), reads are dispatched to the
  /// reader pool. Requires Start().
  Response Call(const Request& request);

  /// Pumps frames from one connection until kClose, EOF, or a malformed
  /// frame. Requires Start(). Blocking — run on the connection's thread.
  void Serve(ByteChannel* channel);

  /// Accept loop: one connection-pump thread per accepted channel.
  /// Returns when the listener is closed; the pump threads are joined by
  /// Stop().
  void ServeListener(SocketListener* listener);

  // -- Introspection ----------------------------------------------------

  /// What recovery-on-start found (all defaults when the server runs
  /// without durability or from a fresh directory).
  struct RecoveryInfo {
    /// True when Create ran recovery (durability.dir was non-empty).
    bool ran = false;
    /// Epoch recovered to — the first publish and the base the commit
    /// log continues from. CommitLog() only holds post-recovery commits.
    int64_t epoch = 0;
    int64_t replayed = 0;
    bool from_snapshot = false;
    bool truncated_tail = false;
  };
  const RecoveryInfo& recovery() const { return recovery_; }
  /// The durable store, or null when running in-memory. The store is the
  /// writer's — readers may only touch the const counters at quiescence.
  const store::DurableStore* store() const { return store_.get(); }
  /// Closes the store's group-commit window now — the shutdown flush the
  /// destructor would otherwise issue. Lets a caller that needs the
  /// store's final state (oracle pair #11) settle it first: a scheduled
  /// crash pending on the fsync path fires here, not mid-destruction.
  /// OK when running in-memory or when the store already crashed.
  Status FlushStore();

  /// Epoch of the currently published snapshot (0 right after Create).
  int64_t epoch() const { return registry_.current_epoch(); }
  const SnapshotRegistry& snapshots() const { return registry_; }
  const Catalog& catalog() const { return *catalog_; }
  /// Copy of the commit log (publication order).
  std::vector<CommitRecord> CommitLog() const;
  /// The underlying view's deterministic maintenance counters. Only
  /// meaningful at quiescence (the writer thread mutates them).
  IncrementalView::Stats view_stats() const;

  /// Writer-side hook, invoked after each publish with the new epoch and
  /// its canonical model bytes — the virtual scheduler and tests capture
  /// the per-epoch byte stream here. Runs on the writer('s thread);
  /// must not call back into the server. Set before any writer step.
  using PublishHook =
      std::function<void(int64_t epoch, const std::string& bytes)>;
  void set_on_publish(PublishHook hook) { on_publish_ = std::move(hook); }

 private:
  struct PendingUpdate {
    int64_t ticket = 0;
    std::vector<FactUpdate> batch;
  };
  struct TicketState {
    bool done = false;
    Response response;
  };
  /// One read request waiting for (or on) a reader thread.
  struct QueryJob {
    Request request;
    std::chrono::steady_clock::time_point admit;
    Response response;
    bool done = false;
  };

  Server(std::unique_ptr<IncrementalView> view, const Catalog* catalog,
         SymbolTable* symbols, const ServerOptions& options);

  /// Serializes the current model and publishes it as `epoch`. Writer
  /// only.
  void PublishCurrentModel(int64_t epoch);

  void WriterLoop();
  void ReaderLoop();

  const Catalog* catalog_;
  SymbolTable* symbols_;
  ServerOptions options_;
  /// Mutated only by the writer (thread or ApplyOneQueued caller).
  std::unique_ptr<IncrementalView> view_;
  /// Durable commit path (null = in-memory). Writer-only, like view_;
  /// flushed (group-commit window closed) by the destructor on a clean
  /// shutdown.
  std::unique_ptr<store::DurableStore> store_;
  RecoveryInfo recovery_;
  SnapshotRegistry registry_;
  PublishHook on_publish_;

  /// Guards the writer queue, tickets and commit log.
  mutable std::mutex mu_;
  std::condition_variable writer_cv_;   // queue non-empty or stopping
  std::condition_variable tickets_cv_;  // a ticket settled
  std::deque<PendingUpdate> queue_;
  std::unordered_map<int64_t, TicketState> tickets_;
  std::vector<CommitRecord> commit_log_;
  int64_t next_ticket_ = 1;

  /// Guards the reader job queue.
  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;       // job available or stopping
  std::condition_variable jobs_done_cv_;  // a job finished
  std::deque<QueryJob*> jobs_;

  std::mutex threads_mu_;  // guards the thread containers + started_
  bool started_ = false;
  bool stopping_ = false;  // written under mu_ AND jobs_mu_ when set
  std::thread writer_thread_;
  std::vector<std::thread> reader_threads_;
  std::vector<std::thread> conn_threads_;
  /// Accepted connections, owned here so Stop can Close them to unblock
  /// their pump threads.
  std::vector<std::unique_ptr<ByteChannel>> conn_channels_;
};

}  // namespace server
}  // namespace datalog

#endif  // UNCHAINED_SERVER_SERVER_H_
