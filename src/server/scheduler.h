#ifndef UNCHAINED_SERVER_SCHEDULER_H_
#define UNCHAINED_SERVER_SCHEDULER_H_

// Deterministic virtual-clock scheduler (docs/server.md#virtual-clock):
// replays a seeded interleaving of client sessions against a Server's
// scheduler-driven surface, with no real threads and no wall clock.
//
// The scheduler maintains one actor per session plus the writer. Each
// step it draws the next runnable actor from a seeded Rng and advances
// the virtual clock by one tick:
//
//   * A session actor executes its next script op (session.h). Reads are
//     served immediately at the currently published epoch; an update is
//     submitted to the writer queue and *blocks its session* until the
//     batch commits — which gives sessions read-your-writes and makes
//     per-session epoch monotonicity a hard invariant to check.
//   * The writer actor (runnable while the queue is non-empty) applies
//     one batch and publishes the next epoch.
//
// Budgets: wall-clock deadlines are meaningless under a virtual clock,
// so deadline exhaustion is exercised by the threaded tests; here a
// seeded fraction of read ops arrives pre-cancelled instead, driving the
// cancellation path (and its no-leaked-pins guarantee) inside every
// fuzzed schedule. Cancelled responses carry no payload and are skipped
// by the oracle's byte diffs.
//
// The run is a pure function of (server state, ops, options): the same
// seed yields the same event order, the same commit order, and the same
// response bytes — which is what lets oracle pair #10 re-run a schedule
// to check the server's own determinism, and what makes shrunken repros
// replayable.

#include <cstdint>
#include <string>
#include <vector>

#include "server/server.h"
#include "server/session.h"

namespace datalog {
namespace server {

struct SchedulerOptions {
  uint64_t seed = 0;
  /// Probability a read op's token is pre-cancelled (see above).
  double cancel_prob = 0.0;
};

/// One executed session op, in virtual-time order.
struct ScheduledEvent {
  int64_t vtime = 0;     // virtual tick the op completed at
  size_t op_index = 0;   // index into the script's op list
  int session = 0;
  bool cancelled_injected = false;
  Response response;
};

struct ScheduleRun {
  bool ok = false;
  std::string error;
  /// Completed ops, in completion (virtual-time) order. Update events
  /// complete when their batch commits.
  std::vector<ScheduledEvent> events;
  /// The server's commit log after the run (publication order).
  std::vector<CommitRecord> commits;
  /// Published model bytes per epoch: epoch_bytes[i] is epoch
  /// (base_epoch + i)'s canonical snapshot. base_epoch is 0 for a fresh
  /// server and the recovered epoch when the run drives a server that
  /// restarted from a durable store (server.h RecoveryInfo).
  std::vector<std::string> epoch_bytes;
  int64_t base_epoch = 0;
  int64_t final_epoch = 0;
  /// Maintenance counters and reclamation state at quiescence.
  IncrementalView::Stats view_stats;
  SnapshotRegistry::Counters counters;
  int64_t live_snapshots = 0;
  int64_t pinned = 0;
};

/// Runs `ops` against `server` (fresh from Create, not Start()ed) until
/// every session is exhausted and the writer queue is drained. The
/// scheduler installs its own publish hook on the server. `!ok` means
/// the schedule itself could not make progress (e.g. an update op whose
/// tokens the server rejects still completes — with the rejection as its
/// response — so rejections do not fail the run).
ScheduleRun RunSessions(Server* server, const std::vector<SessionOp>& ops,
                        const SchedulerOptions& options);

}  // namespace server
}  // namespace datalog

#endif  // UNCHAINED_SERVER_SCHEDULER_H_
