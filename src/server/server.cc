#include "server/server.h"

#include <utility>

#include "dist/transport.h"
#include "eval/test_hooks.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/session.h"
#include "store/recover.h"

namespace datalog {

namespace internal {
bool g_server_publish_stale = false;
}  // namespace internal

namespace server {

namespace {

using Clock = std::chrono::steady_clock;

obs::CounterHandle& RequestsCounter() {
  static obs::CounterHandle c("server.requests");
  return c;
}
obs::CounterHandle& QueriesCounter() {
  static obs::CounterHandle c("server.queries");
  return c;
}
obs::CounterHandle& UpdatesCounter() {
  static obs::CounterHandle c("server.updates");
  return c;
}
obs::CounterHandle& BatchesAppliedCounter() {
  static obs::CounterHandle c("server.batches_applied");
  return c;
}
obs::CounterHandle& CancelledCounter() {
  static obs::CounterHandle c("server.cancelled");
  return c;
}
obs::CounterHandle& DeadlineExhaustedCounter() {
  static obs::CounterHandle c("server.deadline_exhausted");
  return c;
}
obs::GaugeHandle& EpochGauge() {
  static obs::GaugeHandle g("server.epoch");
  return g;
}
obs::HistogramHandle& RequestLatency() {
  static obs::HistogramHandle h("server.request_us");
  return h;
}
obs::HistogramHandle& ApplyLatency() {
  static obs::HistogramHandle h("server.apply_us");
  return h;
}
obs::CounterHandle& WalAppendsCounter() {
  static obs::CounterHandle c("server.wal_appends");
  return c;
}
obs::CounterHandle& WalSyncsCounter() {
  static obs::CounterHandle c("server.wal_syncs");
  return c;
}
obs::CounterHandle& WalRefusedCounter() {
  static obs::CounterHandle c("server.wal_refused");
  return c;
}
obs::CounterHandle& WalSnapshotsCounter() {
  static obs::CounterHandle c("server.wal_snapshots");
  return c;
}
obs::GaugeHandle& WalBytesGauge() {
  static obs::GaugeHandle g("server.wal_bytes");
  return g;
}

Response Refuse(StatusCode code, std::string error) {
  Response r;
  r.status = code;
  r.error = std::move(error);
  return r;
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Create(const Program& program,
                                               const Catalog* catalog,
                                               SymbolTable* symbols,
                                               const Instance& base,
                                               const ServerOptions& options) {
  if (options.durability.dir.empty()) {
    Result<std::unique_ptr<IncrementalView>> view =
        IncrementalView::Create(program, *catalog, base, options.eval);
    if (!view.ok()) return view.status();
    std::unique_ptr<Server> server(
        new Server(std::move(view).value(), catalog, symbols, options));
    server->PublishCurrentModel(0);
    return server;
  }

  // Durable mode: rebuild the view from the store directory (snapshot +
  // WAL tail), then open the store for appending — in this order, so a
  // torn WAL tail is repaired before the new writer appends after it.
  OBS_SPAN("server.recover", {});
  Result<store::Recovered> recovered = store::Recover(
      options.durability.dir, program, *catalog, symbols, base, options.eval);
  if (!recovered.ok()) return recovered.status();
  Result<std::unique_ptr<store::DurableStore>> store =
      store::DurableStore::Open(options.durability);
  if (!store.ok()) return store.status();
  std::unique_ptr<Server> server(new Server(std::move(recovered->view),
                                            catalog, symbols, options));
  server->store_ = std::move(*store);
  server->recovery_.ran = true;
  server->recovery_.epoch = recovered->epoch;
  server->recovery_.replayed = recovered->replayed;
  server->recovery_.from_snapshot = recovered->from_snapshot;
  server->recovery_.truncated_tail = recovered->truncated_tail;
  WalBytesGauge().Set(server->store_->wal().size());
  // The first publish carries the recovered epoch: clients resume at the
  // exact version the directory proves durable.
  server->PublishCurrentModel(recovered->epoch);
  return server;
}

Server::Server(std::unique_ptr<IncrementalView> view, const Catalog* catalog,
               SymbolTable* symbols, const ServerOptions& options)
    : catalog_(catalog),
      symbols_(symbols),
      options_(options),
      view_(std::move(view)) {
  if (options_.num_readers < 1) options_.num_readers = 1;
}

Status Server::FlushStore() {
  if (store_ == nullptr || store_->crashed()) return Status::OK();
  return store_->Flush();
}

Server::~Server() {
  Stop();
  // Clean shutdown closes the group-commit window, so only a real (or
  // scheduled) crash can lose the unsynced tail. A crashed store refuses
  // the flush; ignore it — the directory is already in its final state.
  if (store_ != nullptr && !store_->crashed()) {
    (void)store_->Flush();
  }
}

void Server::PublishCurrentModel(int64_t epoch) {
  OBS_SPAN("server.publish", {{"epoch", static_cast<int>(epoch)}});
  Instance model = view_->model();
  std::string bytes = model.SerializeSnapshot();
  auto snapshot =
      std::make_unique<Snapshot>(epoch, std::move(model), std::move(bytes));
  const Snapshot* published = snapshot.get();
  registry_.Publish(std::move(snapshot));
  EpochGauge().Set(epoch);
  if (on_publish_) on_publish_(epoch, published->model_bytes());
}

Result<int64_t> Server::SubmitUpdate(const std::string& tokens) {
  RequestsCounter().Add(1);
  UpdatesCounter().Add(1);
  // The whole submission — including the parse — runs under mu_:
  // ParseUpdateTokens interns values into the shared SymbolTable, which
  // is not thread-safe, and concurrent clients reach here from their own
  // threads. Nothing else server-side mutates the table (readers serve
  // frozen bytes; ApplyBatch consumes already-interned values), so mu_
  // is the table's sole writer gate.
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FactUpdate> batch;
  if (!ParseUpdateTokens(tokens, *catalog_, symbols_, &batch) ||
      batch.empty()) {
    return Status(StatusCode::kSchemaError,
                  "malformed update batch: " + tokens);
  }
  // Enqueue-or-refuse under the lock Stop sets `stopping_` under: a
  // batch queued here is guaranteed to be drained by the writer before
  // it exits, so every accepted ticket settles.
  if (stopping_) {
    return Status(StatusCode::kCancelled, "server stopping");
  }
  const int64_t ticket = next_ticket_++;
  queue_.push_back(PendingUpdate{ticket, std::move(batch)});
  tickets_.emplace(ticket, TicketState{});
  writer_cv_.notify_one();
  return ticket;
}

bool Server::ApplyOneQueued() {
  PendingUpdate pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    pending = std::move(queue_.front());
    queue_.pop_front();
  }

  OBS_SPAN("server.apply_batch",
           {{"updates", static_cast<int>(pending.batch.size())}});
  obs::ScopedLatency latency(&ApplyLatency());

  // A crashed store refuses all further writes without touching the
  // view: the view may already hold a batch whose WAL append failed, and
  // that dirty state must never be published or extended.
  if (store_ != nullptr && store_->crashed()) {
    WalRefusedCounter().Add(1);
    Response refused = Refuse(StatusCode::kInternal,
                              "store crashed (commit refused)");
    {
      std::lock_guard<std::mutex> lock(mu_);
      TicketState& ticket = tickets_[pending.ticket];
      ticket.done = true;
      ticket.response = std::move(refused);
    }
    tickets_cv_.notify_all();
    return true;
  }

  // Planted torn-read bug (test_hooks.h): snapshot the model *before*
  // the batch lands, then publish those stale bytes under the new epoch.
  std::unique_ptr<Snapshot> stale;
  if (internal::g_server_publish_stale) {
    Instance model = view_->model();
    std::string bytes = model.SerializeSnapshot();
    stale = std::make_unique<Snapshot>(registry_.current_epoch() + 1,
                                       std::move(model), std::move(bytes));
  }

  const int64_t syncs_before =
      store_ != nullptr ? store_->wal().syncs() : 0;
  const Status st = view_->ApplyBatch(pending.batch);
  Response response;
  bool logged = true;
  if (!st.ok()) {
    response.status = st.code();
    response.error = st.message();
  } else {
    const int64_t epoch = registry_.current_epoch() + 1;
    // WAL append sits between apply and publish: an acknowledged commit
    // is always in the log (modulo the group-commit window), and a
    // rejected batch never is. On append failure the epoch is neither
    // published nor acked — the view is dirty now, but both failure
    // kinds (the crash schedule AND a real I/O error, e.g. ENOSPC) latch
    // the store's crashed flag, so the crashed() gate above keeps the
    // dirty state private forever.
    if (store_ != nullptr) {
      OBS_SPAN("server.wal_append", {{"epoch", static_cast<int>(epoch)}});
      const std::string tokens =
          FormatUpdateTokens(pending.batch, *catalog_, *symbols_);
      const Status append = store_->AppendCommit(epoch, tokens);
      if (!append.ok()) {
        logged = false;
        WalRefusedCounter().Add(1);
        response.status = append.code();
        response.error = append.message();
      } else {
        WalAppendsCounter().Add(1);
        WalBytesGauge().Set(store_->wal().size());
      }
    }
    if (logged) {
      BatchesAppliedCounter().Add(1);
      if (stale != nullptr) {
        const Snapshot* published = stale.get();
        registry_.Publish(std::move(stale));
        EpochGauge().Set(epoch);
        if (on_publish_) on_publish_(epoch, published->model_bytes());
      } else {
        PublishCurrentModel(epoch);
      }
      response.epoch = epoch;
      {
        std::lock_guard<std::mutex> lock(mu_);
        commit_log_.push_back(CommitRecord{epoch, std::move(pending.batch)});
      }
      // Compaction after publish: the ack does not wait on the snapshot
      // write, and a compaction crash cannot retract an acked commit —
      // it only kills the store for *future* writes.
      if (store_ != nullptr && store_->CompactionDue()) {
        OBS_SPAN("server.compact", {{"epoch", static_cast<int>(epoch)}});
        // The snapshot's raw value words are only decodable with this
        // writer's interning order, so the full spelling table rides
        // along (snapshotter.h).
        std::vector<std::string> spellings;
        spellings.reserve(static_cast<size_t>(symbols_->size()));
        for (int v = 0; v < symbols_->size(); ++v) {
          spellings.push_back(symbols_->NameOf(static_cast<Value>(v)));
        }
        const int64_t before = store_->snapshots();
        (void)store_->MaybeCompact(epoch, view_->base().SerializeSnapshot(),
                                   std::move(spellings));
        if (store_->snapshots() > before) WalSnapshotsCounter().Add(1);
        WalBytesGauge().Set(store_->wal().size());
      }
      if (store_ != nullptr) {
        WalSyncsCounter().Add(store_->wal().syncs() - syncs_before);
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    TicketState& ticket = tickets_[pending.ticket];
    ticket.done = true;
    ticket.response = std::move(response);
  }
  tickets_cv_.notify_all();
  return true;
}

bool Server::UpdateOutcome(int64_t ticket, Response* response) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tickets_.find(ticket);
  if (it == tickets_.end() || !it->second.done) return false;
  *response = it->second.response;
  return true;
}

int64_t Server::pending_updates() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

Response Server::ServeQuery(const Request& request) {
  return ServeQuery(request, Clock::now());
}

Response Server::ServeQuery(const Request& request,
                            Clock::time_point admit) {
  RequestsCounter().Add(1);
  QueriesCounter().Add(1);
  OBS_SPAN("server.query",
           {{"kind", static_cast<int>(request.kind)}});
  obs::ScopedLatency latency(&RequestLatency());

  auto expired = [&] {
    return request.deadline_ms != 0 &&
           Clock::now() - admit >=
               std::chrono::milliseconds(request.deadline_ms);
  };
  // Budget checks bracket the pin: a cancelled or deadline-exhausted
  // request must not pin a snapshot (checked before) nor hold its pin
  // through the payload serialization (checked after the pin; the RAII
  // pin releases on every return path, so refused requests leave the
  // reclamation counters balanced).
  if (request.cancel != nullptr && request.cancel->cancelled()) {
    CancelledCounter().Add(1);
    return Refuse(StatusCode::kCancelled, "cancelled before pin");
  }
  if (expired()) {
    DeadlineExhaustedCounter().Add(1);
    return Refuse(StatusCode::kBudgetExhausted, "deadline before pin");
  }

  SnapshotPin pin = registry_.Pin();
  if (!pin.valid()) {
    return Refuse(StatusCode::kInternal, "no snapshot published");
  }
  if (request.cancel != nullptr && request.cancel->cancelled()) {
    CancelledCounter().Add(1);
    return Refuse(StatusCode::kCancelled, "cancelled at pinned snapshot");
  }
  if (expired()) {
    DeadlineExhaustedCounter().Add(1);
    return Refuse(StatusCode::kBudgetExhausted,
                  "deadline at pinned snapshot");
  }

  Response response;
  response.epoch = pin->epoch();
  switch (request.kind) {
    case Request::Kind::kPing:
      break;
    case Request::Kind::kSnapshotQuery:
      response.body = pin->model_bytes();
      break;
    case Request::Kind::kQuery: {
      const PredId pred = catalog_->Find(request.text);
      if (pred < 0) {
        return Refuse(StatusCode::kSchemaError,
                      "unknown predicate: " + request.text);
      }
      response.body = pin->PredBytes(pred);
      break;
    }
    case Request::Kind::kUpdate:
    case Request::Kind::kClose:
      return Refuse(StatusCode::kInvalidProgram,
                    "not a read request");
  }
  return response;
}

// -- Threaded mode ------------------------------------------------------

void Server::Start() {
  std::lock_guard<std::mutex> lock(threads_mu_);
  if (started_) return;
  started_ = true;
  {
    std::lock_guard<std::mutex> l1(mu_);
    std::lock_guard<std::mutex> l2(jobs_mu_);
    stopping_ = false;
  }
  writer_thread_ = std::thread([this] { WriterLoop(); });
  reader_threads_.reserve(static_cast<size_t>(options_.num_readers));
  for (int i = 0; i < options_.num_readers; ++i) {
    reader_threads_.emplace_back([this] { ReaderLoop(); });
  }
}

void Server::Stop() {
  std::lock_guard<std::mutex> lock(threads_mu_);
  if (!started_) return;
  {
    std::lock_guard<std::mutex> l1(mu_);
    std::lock_guard<std::mutex> l2(jobs_mu_);
    stopping_ = true;
  }
  writer_cv_.notify_all();
  jobs_cv_.notify_all();
  if (writer_thread_.joinable()) writer_thread_.join();
  for (std::thread& t : reader_threads_) {
    if (t.joinable()) t.join();
  }
  reader_threads_.clear();
  // Unblock connection pumps stuck in ReadFrame, then join them. Their
  // in-flight Calls have already settled: pre-stop work was drained
  // above, post-stop work is refused at enqueue.
  for (const std::unique_ptr<ByteChannel>& channel : conn_channels_) {
    channel->Close();
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.clear();
  conn_channels_.clear();
  started_ = false;
}

void Server::WriterLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      writer_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
    }
    ApplyOneQueued();
  }
}

void Server::ReaderLoop() {
  for (;;) {
    QueryJob* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      jobs_cv_.wait(lock, [&] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping and drained
      job = jobs_.front();
      jobs_.pop_front();
    }
    Response response = ServeQuery(job->request, job->admit);
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      job->response = std::move(response);
      job->done = true;
    }
    jobs_done_cv_.notify_all();
  }
}

Response Server::Call(const Request& request) {
  const Clock::time_point admit = Clock::now();
  if (request.kind == Request::Kind::kUpdate) {
    Result<int64_t> ticket = SubmitUpdate(request.text);
    if (!ticket.ok()) {
      return Refuse(ticket.status().code(), ticket.status().message());
    }
    std::unique_lock<std::mutex> lock(mu_);
    tickets_cv_.wait(lock, [&] {
      auto it = tickets_.find(*ticket);
      return it != tickets_.end() && it->second.done;
    });
    Response response = tickets_[*ticket].response;
    tickets_.erase(*ticket);  // settled tickets are single-reader
    return response;
  }
  if (request.kind == Request::Kind::kClose) {
    return Refuse(StatusCode::kInvalidProgram, "close is not callable");
  }

  QueryJob job;
  job.request = request;
  job.admit = admit;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    // Same enqueue-or-refuse discipline as SubmitUpdate: a job pushed
    // while !stopping_ is drained by the reader pool before it exits.
    if (stopping_) {
      return Refuse(StatusCode::kCancelled, "server stopping");
    }
    jobs_.push_back(&job);
  }
  jobs_cv_.notify_one();
  std::unique_lock<std::mutex> lock(jobs_mu_);
  jobs_done_cv_.wait(lock, [&] { return job.done; });
  return std::move(job.response);
}

void Server::Serve(ByteChannel* channel) {
  std::string payload;
  while (ReadFrame(channel, &payload)) {
    Request request;
    if (!DecodeRequest(payload, &request)) {
      WriteFrame(channel, EncodeResponse(Refuse(StatusCode::kParseError,
                                                "malformed request")));
      break;
    }
    if (request.kind == Request::Kind::kClose) break;
    const Response response = Call(request);
    if (!WriteFrame(channel, EncodeResponse(response))) break;
  }
  channel->Close();
}

void Server::ServeListener(SocketListener* listener) {
  for (;;) {
    std::unique_ptr<ByteChannel> channel = listener->Accept();
    if (channel == nullptr) return;
    std::lock_guard<std::mutex> lock(threads_mu_);
    // The server keeps ownership so Stop can Close (unblock) the pump;
    // the channel is freed with the containers at Stop.
    ByteChannel* raw = channel.get();
    conn_channels_.push_back(std::move(channel));
    conn_threads_.emplace_back([this, raw] { Serve(raw); });
  }
}

std::vector<CommitRecord> Server::CommitLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return commit_log_;
}

IncrementalView::Stats Server::view_stats() const {
  return view_->stats();
}

}  // namespace server
}  // namespace datalog
