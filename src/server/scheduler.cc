#include "server/scheduler.h"

#include <map>
#include <utility>

#include "base/rng.h"

namespace datalog {
namespace server {

namespace {

struct SessionState {
  std::vector<size_t> op_indices;  // positions in the script, in order
  size_t cursor = 0;
  /// >= 0 while the session is blocked on a submitted update.
  int64_t waiting_ticket = -1;
  size_t waiting_op_index = 0;

  bool blocked() const { return waiting_ticket >= 0; }
  bool exhausted() const { return cursor >= op_indices.size(); }
};

}  // namespace

ScheduleRun RunSessions(Server* server, const std::vector<SessionOp>& ops,
                        const SchedulerOptions& options) {
  ScheduleRun run;
  Rng rng(options.seed);

  std::map<int, SessionState> sessions;  // ordered: deterministic walks
  for (size_t i = 0; i < ops.size(); ++i) {
    sessions[ops[i].session].op_indices.push_back(i);
  }

  // Per-epoch byte capture: the publish hook sees every epoch the run
  // creates; the initial epoch's bytes come from one bookkeeping
  // snapshot query before any writer step runs.
  std::map<int64_t, std::string> epoch_bytes;
  server->set_on_publish(
      [&epoch_bytes](int64_t epoch, const std::string& bytes) {
        epoch_bytes[epoch] = bytes;
      });
  {
    Request initial;
    initial.kind = Request::Kind::kSnapshotQuery;
    Response r = server->ServeQuery(initial);
    if (r.status != StatusCode::kOk) {
      server->set_on_publish(nullptr);
      run.error = "initial snapshot query failed: " + r.error;
      return run;
    }
    epoch_bytes[r.epoch] = r.body;
  }

  int64_t vtime = 0;
  for (;;) {
    // Runnable actors, in a fixed order so the seeded draw is the only
    // source of schedule variation: sessions ascending, then the writer.
    constexpr int kWriter = -1;
    std::vector<int> runnable;
    for (const auto& [sid, state] : sessions) {
      if (!state.blocked() && !state.exhausted()) runnable.push_back(sid);
    }
    if (server->pending_updates() > 0) runnable.push_back(kWriter);
    if (runnable.empty()) {
      bool all_done = true;
      for (const auto& [sid, state] : sessions) {
        all_done = all_done && !state.blocked() && state.exhausted();
      }
      if (!all_done) {
        server->set_on_publish(nullptr);
        run.error = "schedule stuck: blocked session with an empty queue";
        return run;
      }
      break;
    }

    const int actor = runnable[rng.Uniform(runnable.size())];
    ++vtime;

    if (actor == kWriter) {
      server->ApplyOneQueued();
      // The commit settles exactly one ticket; unblock its session.
      for (auto& [sid, state] : sessions) {
        if (!state.blocked()) continue;
        Response response;
        if (!server->UpdateOutcome(state.waiting_ticket, &response)) {
          continue;
        }
        run.events.push_back(ScheduledEvent{vtime, state.waiting_op_index,
                                            sid, false,
                                            std::move(response)});
        state.waiting_ticket = -1;
      }
      continue;
    }

    SessionState& state = sessions[actor];
    const size_t op_index = state.op_indices[state.cursor++];
    const SessionOp& op = ops[op_index];
    if (op.kind == SessionOp::Kind::kUpdate) {
      Result<int64_t> ticket = server->SubmitUpdate(op.update_tokens);
      if (!ticket.ok()) {
        Response response;
        response.status = ticket.status().code();
        response.error = ticket.status().message();
        run.events.push_back(ScheduledEvent{vtime, op_index, actor, false,
                                            std::move(response)});
      } else {
        state.waiting_ticket = *ticket;
        state.waiting_op_index = op_index;
      }
      continue;
    }

    Request request;
    request.kind = op.kind == SessionOp::Kind::kQuery
                       ? Request::Kind::kQuery
                       : Request::Kind::kSnapshotQuery;
    request.text = op.pred;
    CancelToken token;
    const bool cancelled =
        options.cancel_prob > 0 && rng.Chance(options.cancel_prob);
    if (cancelled) token.Cancel();
    request.cancel = &token;
    Response response = server->ServeQuery(request);
    run.events.push_back(ScheduledEvent{vtime, op_index, actor, cancelled,
                                        std::move(response)});
  }
  server->set_on_publish(nullptr);

  run.commits = server->CommitLog();
  run.final_epoch = server->epoch();
  run.view_stats = server->view_stats();
  run.counters = server->snapshots().counters();
  run.live_snapshots = server->snapshots().live();
  run.pinned = server->snapshots().pinned();

  // Flatten the per-epoch bytes; the epochs seen must be contiguous from
  // the first observed one (0 for a fresh server, the recovered epoch for
  // one restarted from a durable store) through final_epoch.
  int64_t expected = epoch_bytes.empty() ? 0 : epoch_bytes.begin()->first;
  run.base_epoch = expected;
  for (auto& [epoch, bytes] : epoch_bytes) {
    if (epoch != expected++) {
      run.error = "epoch gap in published snapshots at " +
                  std::to_string(epoch);
      return run;
    }
    run.epoch_bytes.push_back(std::move(bytes));
  }
  if (expected != run.final_epoch + 1) {
    run.error = "published epochs end at " + std::to_string(expected - 1) +
                " but the server is at " + std::to_string(run.final_epoch);
    return run;
  }
  run.ok = true;
  return run;
}

}  // namespace server
}  // namespace datalog
