#ifndef UNCHAINED_SERVER_WIRE_H_
#define UNCHAINED_SERVER_WIRE_H_

// Binary wire protocol of the concurrent Datalog server
// (docs/server.md#wire-format). Everything on the wire is a *frame*:
//
//   u32  payload length (little endian)
//   u8[] payload
//
// Request payload:
//   u8   kind            (Request::Kind)
//   i64  deadline_ms     (0 = no budget; measured from server admission)
//   u32  text length
//   u8[] text            (kQuery: predicate name; kUpdate: signed update
//                         tokens, e.g. "+e1(0,1) -e2(3)" — the `%~`
//                         batch syntax of docs/testing.md without the
//                         marker; other kinds: empty)
//
// Response payload:
//   u8   status          (StatusCode)
//   i64  epoch           (snapshot epoch served or committed; -1 if none)
//   u32  body length
//   u8[] body            (query results in the canonical
//                         Instance::SerializeSnapshot byte format — the
//                         same bytes docs/distribution.md checkpoints
//                         and oracle pair #10 diff; empty otherwise)
//
// The cancellation token of a local request never crosses the wire: a
// remote client cancels by closing its connection.

#include <cstdint>
#include <string>

#include "base/status.h"
#include "eval/common.h"

namespace datalog {

class ByteChannel;

namespace server {

struct Request {
  enum class Kind : uint8_t {
    kPing = 0,           // liveness probe; response carries the epoch
    kQuery = 1,          // one predicate's tuples at a pinned snapshot
    kSnapshotQuery = 2,  // the full model at a pinned snapshot
    kUpdate = 3,         // a mutation batch for the writer queue
    kClose = 4,          // ends the session; no response
  };

  Kind kind = Kind::kPing;
  /// kQuery: predicate name. kUpdate: signed update tokens.
  std::string text;
  /// Per-request budget (EvalOptions::deadline_ms semantics), measured
  /// from the moment the server admits the request. 0 disables.
  int64_t deadline_ms = 0;
  /// Local callers only (not serialized): checked before pinning and
  /// again between pin and payload serialization.
  const CancelToken* cancel = nullptr;
};

struct Response {
  StatusCode status = StatusCode::kOk;
  /// Epoch served (queries) or created (updates); -1 when no snapshot
  /// was involved (errors before pinning).
  int64_t epoch = -1;
  /// Canonical snapshot bytes (queries) — empty otherwise.
  std::string body;
  /// Local-only diagnostic; not serialized.
  std::string error;
};

/// True if `kind` denotes a read served from a pinned snapshot.
inline bool IsReadRequest(Request::Kind kind) {
  return kind == Request::Kind::kPing || kind == Request::Kind::kQuery ||
         kind == Request::Kind::kSnapshotQuery;
}

// -- Payload codecs (deterministic little-endian byte strings) ----------

std::string EncodeRequest(const Request& request);
/// False on truncated/malformed payloads or an unknown kind.
bool DecodeRequest(const std::string& payload, Request* request);

std::string EncodeResponse(const Response& response);
bool DecodeResponse(const std::string& payload, Response* response);

// -- Framing over a ByteChannel -----------------------------------------

/// Frames cap at 256 MiB — far above any real payload; a length beyond
/// the cap means a corrupt or hostile stream and fails the read.
inline constexpr uint32_t kMaxFrameBytes = 256u << 20;

bool WriteFrame(ByteChannel* channel, const std::string& payload);
/// False on clean close, error, or an over-cap length prefix.
bool ReadFrame(ByteChannel* channel, std::string* payload);

}  // namespace server
}  // namespace datalog

#endif  // UNCHAINED_SERVER_WIRE_H_
