#ifndef UNCHAINED_SERVER_SESSION_H_
#define UNCHAINED_SERVER_SESSION_H_

// Client-session scripts (docs/server.md#session-scripts): a textual
// description of a multi-client workload that rides inside a case's
// facts text as `%` comment lines, invisible to every parser and engine:
//
//   %@ <session> q <pred>      query one predicate at a snapshot
//   %@ <session> s             query the full model snapshot
//   %@ <session> u <tokens>    submit a mutation batch, e.g.
//                              `%@ 1 u +e1(0,1) -e2(3)` — the same signed
//                              ground-atom tokens as `%~` update lines
//
// Ops of one session execute in script order; ops of different sessions
// interleave however the scheduler (or real threads) decides. The fuzz
// generator emits these lines, the virtual-clock scheduler replays them,
// oracle pair #10 diffs the outcome against a sequential library replay,
// and the shrinker's session-minimization pass edits them blindly — so
// parsing is strict and total: any malformed `%@` line fails the parse
// (the oracle then reads the case as inapplicable).

#include <string>
#include <string_view>
#include <vector>

#include "base/symbols.h"
#include "eval/incremental.h"
#include "ra/catalog.h"

namespace datalog {
namespace server {

struct SessionOp {
  enum class Kind : uint8_t { kQuery, kSnapshot, kUpdate };

  int session = 0;
  Kind kind = Kind::kQuery;
  /// kQuery: predicate name.
  std::string pred;
  /// kUpdate: the signed ground-atom tokens, verbatim.
  std::string update_tokens;
};

/// Parses the `+pred(v,...)` / `-pred(v,...)` tokens shared by `%~`
/// update-batch lines and `u` session ops into FactUpdates — integer
/// arguments only (the generator's value domain). False on any malformed
/// token or unknown/wrong-arity predicate. Shared with the
/// incremental-vs-scratch oracle and the server's kUpdate requests.
bool ParseUpdateTokens(std::string_view tokens, const Catalog& catalog,
                       SymbolTable* symbols, std::vector<FactUpdate>* out);

/// Renders a batch back into canonical `+pred(v,...)` tokens, space
/// separated — the exact inverse of ParseUpdateTokens on its integer
/// value domain. The WAL stores these bytes per committed batch
/// (store/wal.h), so Format ∘ Parse must be the identity: recovery
/// replays what was logged, and the crash-recover-vs-replay oracle
/// diffs the two byte-for-byte.
std::string FormatUpdateTokens(const std::vector<FactUpdate>& updates,
                               const Catalog& catalog,
                               const SymbolTable& symbols);

/// Extracts the `%@` session ops from a facts text, in line order. Lines
/// not starting with `%@` (after leading blanks) are ignored. Returns
/// false on any malformed `%@` line; `out` is then unspecified. Note the
/// update tokens are *not* validated here — that needs a catalog and
/// happens at submission.
bool ParseSessionScript(const std::string& facts_text,
                        std::vector<SessionOp>* out);

/// Renders one op back into its script line (no trailing newline).
/// FormatSessionOp ∘ parse is the identity on canonical lines, which the
/// shrinker's rewrite passes rely on.
std::string FormatSessionOp(const SessionOp& op);

}  // namespace server
}  // namespace datalog

#endif  // UNCHAINED_SERVER_SESSION_H_
